//! The scenario DSL: what a simulated run *is*.
//!
//! A [`Scenario`] pins everything a run needs to be reproducible — the
//! service sizing knobs, the target graphs (generated, never loaded from
//! disk), one [`ClientScript`] per virtual client (its protocol lines plus
//! its read/write faults), and a pinned default seed.  Only the seed feeds
//! the interleaving: running the same scenario under the same seed replays
//! the same event trace bit for bit.

use crate::transport::{ReadFault, WriteFault};
use sge_graph::{generators, Graph};
use sge_plan::RoutingConfig;
use sge_service::ServiceConfig;

/// A named target graph, generated in-process so scenarios never touch the
/// filesystem (disk contents are outside the seed's control).
#[derive(Clone, Debug)]
pub struct Target {
    /// Registry name queries refer to.
    pub name: String,
    /// Which generated graph to register.
    pub kind: TargetKind,
}

/// The generated graph families scenarios draw targets from.
#[derive(Clone, Copy, Debug)]
pub enum TargetKind {
    /// `generators::clique(n, 0)`.
    Clique(usize),
    /// `generators::directed_cycle(n, 0)`.
    DirectedCycle(usize),
    /// `generators::directed_path(n, 0)`.
    DirectedPath(usize),
}

impl TargetKind {
    /// Builds the graph.
    pub fn build(&self) -> Graph {
        match *self {
            TargetKind::Clique(n) => generators::clique(n, 0),
            TargetKind::DirectedCycle(n) => generators::directed_cycle(n, 0),
            TargetKind::DirectedPath(n) => generators::directed_path(n, 0),
        }
    }

    /// Human-readable form for the trace header.
    pub fn describe(&self) -> String {
        match *self {
            TargetKind::Clique(n) => format!("clique({n})"),
            TargetKind::DirectedCycle(n) => format!("directed_cycle({n})"),
            TargetKind::DirectedPath(n) => format!("directed_path({n})"),
        }
    }
}

/// One virtual client: its scripted protocol lines and its faults.
#[derive(Clone, Debug, Default)]
pub struct ClientScript {
    /// Protocol lines in order (`BATCH` continuation lines are ordinary
    /// entries right after their header).  Joined with `\n` to form the
    /// client's byte stream.
    pub requests: Vec<String>,
    /// Raw bytes appended *after* the scripted lines — the escape hatch for
    /// deliberately non-UTF-8 or unterminated garbage.
    pub trailing_bytes: Vec<u8>,
    /// Client-side read fault (truncation / reset of the request stream).
    pub read_fault: ReadFault,
    /// Client-side write fault (slow reader / disconnect mid-response).
    pub write_fault: WriteFault,
}

impl ClientScript {
    /// A well-behaved client sending `requests`.
    pub fn new<S: Into<String>>(requests: Vec<S>) -> Self {
        ClientScript {
            requests: requests.into_iter().map(Into::into).collect(),
            ..ClientScript::default()
        }
    }

    /// Sets the read fault.
    pub fn with_read_fault(mut self, fault: ReadFault) -> Self {
        self.read_fault = fault;
        self
    }

    /// Sets the write fault.
    pub fn with_write_fault(mut self, fault: WriteFault) -> Self {
        self.write_fault = fault;
        self
    }

    /// Appends raw trailing bytes (sent after the scripted lines).
    pub fn with_trailing_bytes(mut self, bytes: Vec<u8>) -> Self {
        self.trailing_bytes = bytes;
        self
    }

    /// The client's full request byte stream (before read faults).
    pub fn script_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        for request in &self.requests {
            bytes.extend_from_slice(request.as_bytes());
            bytes.push(b'\n');
        }
        bytes.extend_from_slice(&self.trailing_bytes);
        bytes
    }
}

/// A full simulated run: service knobs + targets + scripted clients.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name (trace header; `sge-sim --scenario NAME`).
    pub name: String,
    /// Pinned default seed (the regression corpus runs under this; the
    /// swarm substitutes fresh seeds).
    pub seed: u64,
    /// Service sizing.  Must be fully pinned — [`ServiceConfig::default`]
    /// depends on the host's core count, which would leak into traces.
    pub config: ServiceConfig,
    /// Generated target graphs registered before any client runs.
    pub targets: Vec<Target>,
    /// One script per virtual client.
    pub clients: Vec<ClientScript>,
    /// Upper bound (exclusive is `+1`) on the random virtual-time jitter, in
    /// microseconds, the simulator advances the clock by before each step.
    pub step_jitter_us: u64,
    /// Scrub match/state counters from the trace.  Required for scenarios
    /// that cancel enumeration *mid-run* without a `max=` cap: how many
    /// states the producer visits before observing the cancel token is an
    /// OS-scheduling fact no seed controls.  Scenarios that cap the run (or
    /// never cancel) keep exact counts in the trace.
    pub normalize_counts: bool,
    /// Number of shards to serve through.  `1` (the default) runs the plain
    /// [`sge_service::Service`]; `> 1` runs the scatter-gather
    /// [`sge_service::Coordinator`] over that many in-process shard
    /// services, with every target vertex-cut partitioned at registration.
    pub shards: usize,
}

impl Scenario {
    /// An empty scenario under the pinned default sizing.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Scenario {
            name: name.into(),
            seed,
            config: pinned_config(),
            targets: Vec::new(),
            clients: Vec::new(),
            step_jitter_us: 500,
            normalize_counts: false,
            shards: 1,
        }
    }

    /// Registers a generated target.
    pub fn with_target(mut self, name: impl Into<String>, kind: TargetKind) -> Self {
        self.targets.push(Target {
            name: name.into(),
            kind,
        });
        self
    }

    /// Adds a client script.
    pub fn with_client(mut self, client: ClientScript) -> Self {
        self.clients.push(client);
        self
    }

    /// Overrides the service sizing (keep every field pinned!).
    pub fn with_config(mut self, config: ServiceConfig) -> Self {
        self.config = config;
        self
    }

    /// Enables count scrubbing (see [`Scenario::normalize_counts`]).
    pub fn with_normalized_counts(mut self) -> Self {
        self.normalize_counts = true;
        self
    }

    /// Serves through the sharded coordinator (see [`Scenario::shards`]).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}

/// The pinned service sizing simulated runs default to.
///
/// Every field is a constant: [`ServiceConfig::default`] sizes itself from
/// `available_parallelism`, which would make traces differ across hosts.
/// `batch_workers` is 1 because a multi-worker batch races its queries
/// against the prepared cache — per-query `cache_hit` flags would then
/// depend on OS thread scheduling, which no seed replays.
pub fn pinned_config() -> ServiceConfig {
    ServiceConfig {
        cache_capacity: 8,
        batch_workers: 1,
        max_in_flight: 2,
        // Pinned thresholds and worker cap: `RoutingConfig::detect` sizes
        // `max_workers` from `available_parallelism`, which would route the
        // same seed to different schedulers across hosts.
        routing: RoutingConfig::pinned(50_000.0, 25_000.0, 4),
        // Bitmap-sidecar defaults are host-independent constants already.
        bitmaps: sge_graph::BitmapConfig::default(),
    }
}

/// The directed-triangle pattern (60 matches in a 5-clique), inline-encoded.
pub fn triangle_inline() -> String {
    inline(&generators::directed_cycle(3, 0))
}

/// The 2-node directed-path pattern (20 matches in a 5-clique), inline-encoded.
pub fn edge_inline() -> String {
    inline(&generators::directed_path(2, 0))
}

/// Inline-encodes any generated graph for a `pattern=` token.
pub fn inline(graph: &Graph) -> String {
    sge_service::protocol::encode_inline_pattern(&sge_graph::io::write_graph(graph))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_bytes_join_lines_and_trailing_garbage() {
        let client = ClientScript::new(vec!["STATS", "SHUTDOWN"])
            .with_trailing_bytes(vec![0xFF, 0xFE, b'\n']);
        assert_eq!(client.script_bytes(), b"STATS\nSHUTDOWN\n\xFF\xFE\n");
    }

    #[test]
    fn patterns_round_trip_through_the_inline_encoding() {
        for encoded in [triangle_inline(), edge_inline()] {
            let decoded = sge_service::protocol::decode_inline_pattern(&encoded);
            let (graph, _) = sge_graph::io::parse_graph(&decoded).expect("inline pattern parses");
            assert!(graph.num_nodes() >= 2);
        }
    }

    #[test]
    fn pinned_config_is_host_independent() {
        let a = pinned_config();
        assert_eq!(a.batch_workers, 1, "multi-worker batches race the cache");
    }
}

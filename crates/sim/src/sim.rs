//! The simulator core: seeded, single-threaded execution of a [`Scenario`]
//! through the *real* serving stack.
//!
//! Each virtual client is the genuine [`sge_service::Connection`] loop over a
//! [`ScriptReader`]/[`FaultWriter`] pair — the same code `sge-serve` runs per
//! TCP socket, minus the socket.  The only scheduler is a [`SplitMix64`]
//! seeded from the scenario: on every iteration it picks which live client
//! steps next (one whole request per step, exactly the granularity the real
//! per-connection loop has between `read_line` calls) and how much virtual
//! time elapses first.  Same seed, same scenario → the same interleaving, the
//! same fault timings, the same trace, byte for byte.

use crate::scenario::Scenario;
use crate::trace::{normalize_line, TraceRecorder};
use crate::transport::{FaultWriter, ReaderProbe, ScriptReader, WriterProbe};
use sge_graph::PartitionSpec;
use sge_service::{Backend, Connection, Coordinator, Service, StatsSnapshot, StepOutcome};
use sge_util::{rng::SplitMix64, Clock, VirtualClock};
use std::sync::Arc;
use std::time::Duration;

/// Hard cap on scheduler iterations — scripts are finite, so hitting this
/// means a connection stopped making progress, which is itself a bug worth a
/// violation rather than a hang.
const MAX_STEPS: usize = 100_000;

/// Everything one simulated run produced.
#[derive(Debug)]
pub struct SimReport {
    /// Scenario name.
    pub scenario: String,
    /// Seed the run executed under.
    pub seed: u64,
    /// The rendered, normalized event trace (the determinism witness).
    pub trace: String,
    /// Service statistics at the end of the run.
    pub stats: StatsSnapshot,
    /// Invariant violations detected during or after the run.  Empty means
    /// the run passed.
    pub violations: Vec<String>,
}

impl SimReport {
    /// `true` when no invariant was violated.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One virtual client mid-run.
struct SimClient {
    id: usize,
    connection: Connection<ScriptReader, FaultWriter>,
    reader: ReaderProbe,
    writer: WriterProbe,
    read_mark: usize,
    write_mark: usize,
}

/// Runs `scenario` under its pinned seed.
pub fn run_scenario(scenario: &Scenario) -> SimReport {
    run_scenario_with_seed(scenario, scenario.seed)
}

/// Runs `scenario` under an explicit seed (the swarm's entry point).
///
/// `shards == 1` drives the plain [`Service`]; `shards > 1` drives the
/// scatter-gather [`Coordinator`] through the *same* connection loop — the
/// two backends share the [`Backend`] seam `sge-serve` binds servers over.
pub fn run_scenario_with_seed(scenario: &Scenario, seed: u64) -> SimReport {
    let clock = Arc::new(VirtualClock::new());
    let mut trace = TraceRecorder::new(scenario.normalize_counts);

    trace.note(format!("# scenario {} seed {seed}", scenario.name));
    trace.note(format!(
        "# config cache={} batch_workers={} max_in_flight={}",
        scenario.config.cache_capacity,
        scenario.config.batch_workers,
        scenario.config.max_in_flight
    ));
    if scenario.shards > 1 {
        let coordinator = Coordinator::with_clock(
            scenario.config,
            Arc::<VirtualClock>::clone(&clock) as Arc<dyn Clock>,
            PartitionSpec::new(scenario.shards),
        );
        trace.note(format!("# shards {}", scenario.shards));
        for target in &scenario.targets {
            let (info, shard_infos) = coordinator.insert_target(&target.name, target.kind.build());
            let owned: Vec<String> = shard_infos
                .iter()
                .map(|shard| shard.nodes.to_string())
                .collect();
            trace.note(format!(
                "# target {} = {} ({} nodes, {} edges; shard ball sizes [{}])",
                target.name,
                target.kind.describe(),
                info.nodes,
                info.edges,
                owned.join(",")
            ));
        }
        drive(scenario, &coordinator, &clock, trace, seed)
    } else {
        let service = Service::with_clock(
            scenario.config,
            Arc::<VirtualClock>::clone(&clock) as Arc<dyn Clock>,
        );
        for target in &scenario.targets {
            let info = service.registry().insert(&target.name, target.kind.build());
            trace.note(format!(
                "# target {} = {} ({} nodes, {} edges)",
                target.name,
                target.kind.describe(),
                info.nodes,
                info.edges
            ));
        }
        drive(scenario, &service, &clock, trace, seed)
    }
}

/// The seeded scheduler loop over any [`Backend`].
fn drive<B: Backend>(
    scenario: &Scenario,
    backend: &B,
    clock: &Arc<VirtualClock>,
    mut trace: TraceRecorder,
    seed: u64,
) -> SimReport {
    let mut violations = Vec::new();
    let mut clients: Vec<SimClient> = scenario
        .clients
        .iter()
        .enumerate()
        .map(|(id, script)| {
            let (reader, reader_probe) =
                ScriptReader::new(script.script_bytes(), script.read_fault);
            let (writer, writer_probe) = FaultWriter::new(Arc::clone(clock), script.write_fault);
            SimClient {
                id,
                connection: Connection::new(reader, writer),
                reader: reader_probe,
                writer: writer_probe,
                read_mark: 0,
                write_mark: 0,
            }
        })
        .collect();

    let mut rng = SplitMix64::new(seed);
    let mut shutdown = false;
    let mut steps = 0usize;

    while !clients.is_empty() {
        if shutdown {
            // The real accept loop stops handing reads to connections once
            // the shutdown flag is up; their queued requests drain unserved.
            for client in &clients {
                trace.event(clock.now(), &format!("client[{}]", client.id), "drained");
            }
            break;
        }
        if steps >= MAX_STEPS {
            violations.push(format!(
                "scheduler ran {MAX_STEPS} steps without quiescing \
                 ({} clients still live)",
                clients.len()
            ));
            break;
        }
        steps += 1;

        if scenario.step_jitter_us > 0 {
            clock.advance(Duration::from_micros(
                rng.next_below(scenario.step_jitter_us as usize + 1) as u64,
            ));
        }
        let pick = rng.next_below(clients.len());
        let client = &mut clients[pick];
        let label = format!("client[{}]", client.id);

        let result = client.connection.step(backend);

        // What the step consumed and produced, via the probes.
        let consumed = client
            .reader
            .text_between(client.read_mark, client.reader.position());
        client.read_mark = client.reader.position();
        if !consumed.is_empty() {
            for line in consumed.split_terminator('\n') {
                trace.event(clock.now(), &format!("{label} >"), line);
            }
        }
        let produced = client.writer.text_since(client.write_mark);
        client.write_mark = client.writer.len();
        for line in produced.split_terminator('\n') {
            trace.event(clock.now(), &format!("{label} <"), line);
            if !(line.starts_with("{\"ok\":") || line.starts_with("{\"rows\":")) {
                violations.push(format!(
                    "{label}: response line is not a protocol object: {line}"
                ));
            }
        }

        let finished = match result {
            Ok(StepOutcome::Continue) => false,
            Ok(StepOutcome::Closed) => {
                trace.event(clock.now(), &label, "closed");
                true
            }
            Ok(StepOutcome::ShutdownRequested) => {
                trace.event(clock.now(), &label, "shutdown-requested");
                shutdown = true;
                true
            }
            Err(err) => {
                trace.event(clock.now(), &label, &format!("io-error {:?}", err.kind()));
                true
            }
        };
        if finished {
            clients.remove(pick);
        }
    }

    let stats = backend.stats_snapshot();
    trace.event(clock.now(), "stats", &backend.stats_json().render());
    check_invariants(&stats, &mut violations);
    if !violations.is_empty() {
        for violation in &violations {
            trace.note(format!("# VIOLATION {violation}"));
        }
    }

    SimReport {
        scenario: scenario.name.clone(),
        seed,
        trace: trace.render(),
        stats,
        violations,
    }
}

/// Global service invariants every run must satisfy, fault-ridden or not.
fn check_invariants(stats: &StatsSnapshot, violations: &mut Vec<String>) {
    if stats.streams_cancelled > stats.streams_served {
        violations.push(format!(
            "streams_cancelled ({}) exceeds streams_served ({})",
            stats.streams_cancelled, stats.streams_served
        ));
    }
    if stats.queries_served > stats.admissions {
        violations.push(format!(
            "queries_served ({}) exceeds admissions ({}) — a query ran \
             without passing the admission gate",
            stats.queries_served, stats.admissions
        ));
    }
    for (name, value) in [
        ("admission_wait_seconds", stats.admission_wait_seconds),
        ("latency_mean_seconds", stats.latency_mean_seconds),
        ("latency_stddev_seconds", stats.latency_stddev_seconds),
        ("latency_min_seconds", stats.latency_min_seconds),
        ("latency_max_seconds", stats.latency_max_seconds),
    ] {
        if !value.is_finite() || value < 0.0 {
            violations.push(format!(
                "{name} is not a finite non-negative number: {value}"
            ));
        }
    }
    if stats.latency_max_seconds < stats.latency_min_seconds {
        violations.push(format!(
            "latency_max_seconds ({}) below latency_min_seconds ({})",
            stats.latency_max_seconds, stats.latency_min_seconds
        ));
    }
}

/// Runs `scenario` twice under `seed` and reports whether the two traces are
/// byte-identical; on divergence, returns the first differing line pair.
pub fn check_determinism(scenario: &Scenario, seed: u64) -> Result<SimReport, Box<Divergence>> {
    let first = run_scenario_with_seed(scenario, seed);
    let second = run_scenario_with_seed(scenario, seed);
    if first.trace == second.trace {
        return Ok(first);
    }
    let (line, first_line, second_line) = first
        .trace
        .lines()
        .zip(second.trace.lines())
        .enumerate()
        .find(|(_, (a, b))| a != b)
        .map(|(i, (a, b))| (i + 1, a.to_string(), b.to_string()))
        .unwrap_or_else(|| {
            (
                first
                    .trace
                    .lines()
                    .count()
                    .min(second.trace.lines().count())
                    + 1,
                "<trace ended>".to_string(),
                "<trace ended>".to_string(),
            )
        });
    Err(Box::new(Divergence {
        scenario: scenario.name.clone(),
        seed,
        line,
        first: first_line,
        second: second_line,
    }))
}

/// Two runs of the same seed produced different traces — the one failure
/// mode the simulator exists to make impossible.
#[derive(Debug)]
pub struct Divergence {
    /// Scenario name.
    pub scenario: String,
    /// Seed both runs executed under.
    pub seed: u64,
    /// 1-based line where the traces first differ.
    pub line: usize,
    /// The first run's line.
    pub first: String,
    /// The second run's line.
    pub second: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scenario '{}' seed {} diverged at trace line {}:\n  run 1: {}\n  run 2: {}",
            self.scenario, self.seed, self.line, self.first, self.second
        )
    }
}

/// Re-normalizes a rendered trace line (used by tests comparing against
/// expected fragments).
pub fn normalize(line: &str, normalize_counts: bool) -> String {
    normalize_line(line, normalize_counts)
}

//! The randomized swarm: scenario generation from a seed, and batch runners
//! for CI.
//!
//! [`random_scenario`] derives a complete scenario — client count, request
//! mix, fault assignment, jitter — from a single `u64` through the same
//! [`SplitMix64`] the simulator schedules with.  A swarm failure therefore
//! reproduces from just that seed: `sge-sim --seed N` rebuilds the exact
//! scenario and replays the exact interleaving that failed.

use crate::corpus;
use crate::scenario::{edge_inline, inline, triangle_inline, ClientScript, Scenario, TargetKind};
use crate::sim::{check_determinism, SimReport};
use crate::transport::{ReadFault, WriteFault};
use sge_graph::generators;
use sge_util::SplitMix64;
use std::time::{Duration, Instant};

/// One failed swarm run: everything needed to reproduce it.
#[derive(Debug)]
pub struct SwarmFailure {
    /// Scenario name (`swarm-<seed>` for generated scenarios).
    pub scenario: String,
    /// The seed to replay with.
    pub seed: u64,
    /// What went wrong (violations or a trace divergence).
    pub reason: String,
}

/// Aggregate result of a corpus or swarm run.
#[derive(Debug, Default)]
pub struct SwarmOutcome {
    /// Scenarios executed (each runs twice for the determinism check).
    pub runs: usize,
    /// Scenarios skipped because the time budget ran out.
    pub skipped: usize,
    /// Every failure, reproducible by seed.
    pub failures: Vec<SwarmFailure>,
}

impl SwarmOutcome {
    /// `true` when every executed run passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs one scenario twice under `seed`, folding violations and trace
/// divergence into `outcome`.
fn run_checked(scenario: &Scenario, seed: u64, outcome: &mut SwarmOutcome) -> Option<SimReport> {
    outcome.runs += 1;
    match check_determinism(scenario, seed) {
        Ok(report) => {
            if !report.passed() {
                outcome.failures.push(SwarmFailure {
                    scenario: scenario.name.clone(),
                    seed,
                    reason: report.violations.join("; "),
                });
            }
            Some(report)
        }
        Err(divergence) => {
            outcome.failures.push(SwarmFailure {
                scenario: scenario.name.clone(),
                seed,
                reason: divergence.to_string(),
            });
            None
        }
    }
}

/// Runs the whole pinned corpus, each scenario twice under its pinned seed.
pub fn run_corpus() -> SwarmOutcome {
    let mut outcome = SwarmOutcome::default();
    for scenario in corpus::corpus() {
        run_checked(&scenario, scenario.seed, &mut outcome);
    }
    outcome
}

/// Runs `count` freshly generated scenarios starting at `start_seed`
/// (seed `start_seed + i` for run `i`), each twice for the determinism
/// check.  `budget` time-boxes the sweep: runs that do not fit are counted
/// as skipped, never silently dropped.
pub fn run_random(start_seed: u64, count: usize, budget: Option<Duration>) -> SwarmOutcome {
    let started = Instant::now();
    let mut outcome = SwarmOutcome::default();
    for i in 0..count {
        if let Some(budget) = budget {
            if started.elapsed() >= budget {
                outcome.skipped = count - i;
                break;
            }
        }
        let seed = start_seed.wrapping_add(i as u64);
        let scenario = random_scenario(seed);
        run_checked(&scenario, seed, &mut outcome);
    }
    outcome
}

/// Derives a complete scenario from `seed`.
///
/// The request mix leans on the fault-bearing paths: streamed queries with
/// small chunks (more frames, more places for a write fault to land),
/// batches (header + continuation framing), malformed lines, STATS probes,
/// and an occasional SHUTDOWN.  Any client with a mid-response disconnect
/// fault forces `normalize_counts`: its cancelled stream leaves racy
/// match/state counters behind (see [`Scenario::normalize_counts`]).
pub fn random_scenario(seed: u64) -> Scenario {
    let mut rng = SplitMix64::new(seed ^ 0x5357_4152_4D5F_5347); // "SWARM_SG"
    let patterns = [
        triangle_inline(),
        edge_inline(),
        inline(&generators::directed_path(3, 0)),
        inline(&generators::directed_cycle(4, 0)),
    ];
    let mut scenario =
        Scenario::new(format!("swarm-{seed}"), seed).with_target("k5", TargetKind::Clique(5));
    scenario.step_jitter_us = [0, 100, 1000][rng.next_below(3)];
    // The sharding dimension: half the swarm runs the plain service, the
    // rest the scatter-gather coordinator at 2 or 4 shards — every fault
    // class below then also exercises the fan-out/merge path.
    scenario = scenario.with_shards([1, 1, 2, 4][rng.next_below(4)]);

    let clients = 1 + rng.next_below(4); // 1..=4
    let mut any_disconnect = false;
    for _ in 0..clients {
        let requests = 1 + rng.next_below(5); // 1..=5
        let mut lines: Vec<String> = Vec::new();
        for _ in 0..requests {
            match rng.next_below(10) {
                0..=2 => {
                    let pattern = &patterns[rng.next_below(patterns.len())];
                    // Cover the routing surface: absent (routed), explicit
                    // auto, and the pinned scheduler families.
                    let sched = ["", " sched=auto", " sched=seq", " sched=ws:2"][rng.next_below(4)];
                    lines.push(format!("QUERY target=k5{sched} pattern={pattern}"));
                }
                3..=5 => {
                    let chunk = [2, 8, 64][rng.next_below(3)];
                    let pattern = &patterns[rng.next_below(patterns.len())];
                    lines.push(format!(
                        "QUERY target=k5 emit=stream chunk={chunk} pattern={pattern}"
                    ));
                }
                6 => {
                    let n = 1 + rng.next_below(3);
                    lines.push(format!("BATCH target=k5 n={n}"));
                    for _ in 0..n {
                        let pattern = &patterns[rng.next_below(patterns.len())];
                        lines.push(format!("pattern={pattern}"));
                    }
                }
                7 => lines.push("STATS".to_string()),
                8 => {
                    // Both planning verbs carry the routing decision object.
                    let verb = ["EXPLAIN", "EXPLAIN ANALYZE"][rng.next_below(2)];
                    lines.push(format!("{verb} target=k5 pattern={}", patterns[0]));
                }
                _ => lines.push("QUERY target=nope pattern=3;0;0;0;0".to_string()),
            }
        }
        if rng.next_below(10) == 0 {
            lines.push("SHUTDOWN".to_string());
        }

        let mut client = ClientScript::new(lines);
        match rng.next_below(8) {
            0 => {
                let cut = 1 + rng.next_below(client.script_bytes().len().max(2) - 1);
                client = client.with_read_fault(ReadFault::TruncateAtByte(cut));
            }
            1 => {
                let cut = 1 + rng.next_below(client.script_bytes().len().max(2) - 1);
                client = client.with_read_fault(ReadFault::ResetAfterByte(cut));
            }
            2 => {
                let lines_budget = 1 + rng.next_below(6) as u64;
                client = client.with_write_fault(WriteFault::disconnect_after_lines(lines_budget));
                any_disconnect = true;
            }
            // Slow readers advance the virtual clock *during* a step.  Under
            // sharding, per-shard streams run on real threads concurrently
            // with those mid-step advances, so the shard-side latency
            // measurements would become OS-scheduling facts no seed replays
            // — keep the stall fault off sharded runs.
            3 if scenario.shards == 1 => {
                let stall = Duration::from_micros(100 << rng.next_below(6));
                client = client.with_write_fault(WriteFault::slow_reader(stall));
            }
            _ => {}
        }
        scenario = scenario.with_client(client);
    }
    if any_disconnect {
        scenario = scenario.with_normalized_counts();
    }
    scenario
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_generates_the_same_scenario() {
        let a = random_scenario(42);
        let b = random_scenario(42);
        assert_eq!(a.clients.len(), b.clients.len());
        for (x, y) in a.clients.iter().zip(&b.clients) {
            assert_eq!(x.requests, y.requests);
            assert_eq!(x.read_fault, y.read_fault);
            assert_eq!(x.write_fault, y.write_fault);
        }
        assert_eq!(a.normalize_counts, b.normalize_counts);
        assert_eq!(a.step_jitter_us, b.step_jitter_us);
    }

    #[test]
    fn generated_scenarios_always_have_a_client() {
        for seed in 0..32 {
            let scenario = random_scenario(seed);
            assert!(!scenario.clients.is_empty(), "seed {seed}");
            assert!(!scenario.targets.is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn budget_zero_skips_everything() {
        let outcome = run_random(1, 5, Some(Duration::ZERO));
        assert_eq!(outcome.runs, 0);
        assert_eq!(outcome.skipped, 5);
        assert!(outcome.passed());
    }
}

//! The event-trace recorder and its normalization rules.
//!
//! The trace is the simulator's determinism witness: running a scenario
//! twice under the same seed must render the *byte-identical* trace.  Two
//! normalizations make that hold without giving up real assertions:
//!
//! * `preprocess_seconds` / `match_seconds` are always scrubbed — the engine
//!   measures them on a raw [`std::time::Instant`], which no virtual clock
//!   controls.  Every *service-level* time (latency, wall seconds, admission
//!   wait, the STATS histogram) derives from the injected clock and stays in
//!   the trace verbatim.
//! * match/state counters are scrubbed only when a scenario opts in via
//!   `normalize_counts` — required when enumeration is cancelled mid-run
//!   without a `max=` cap, because how far the producer thread gets before
//!   observing the cancel token is OS scheduling, not seed.
//!
//! Long lines (row frames, mapping dumps) are truncated at a fixed byte
//! budget; truncation is itself deterministic, so it never perturbs
//! comparisons.

use std::time::Duration;

/// Keys whose numeric values are never reproducible (engine-internal raw
/// `Instant` timings).
const ALWAYS_SCRUBBED: &[&str] = &["preprocess_seconds", "match_seconds"];

/// Keys scrubbed only under `normalize_counts` (racy after a mid-enumeration
/// cancel).  `rows_streamed`/`streams_cancelled` joined the list with the
/// sharded coordinator: its per-shard streams run on real threads, so how
/// many rows a shard hands its bridge before observing a severed channel —
/// and whether it observes it at all — is OS scheduling, not seed.
const COUNT_KEYS: &[&str] = &[
    "matches",
    "states",
    "total_matches",
    "rows_sent",
    "rows_streamed",
    "streams_cancelled",
    // Derived from the racy state counts above: the planner's EWMA
    // correction folds in each query's *actual* states, so a cancelled
    // enumeration perturbs it by however far the producer got.
    "cost_model_correction",
];

/// Longest rendered payload kept per trace line, in bytes.  Sized so the
/// longest single-line responses the corpus asserts on — a METRICS registry
/// snapshot (now carrying the `engine.kernel.*` counters), an EXPLAIN
/// ANALYZE with spans, per-position kernels and `kernel_usage` — fit whole;
/// row frames and oversized request lines still truncate (deterministically).
const MAX_LINE_BYTES: usize = 1200;

/// An append-only, virtually-timestamped event log.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    lines: Vec<String>,
    normalize_counts: bool,
}

impl TraceRecorder {
    /// An empty trace with the given count-scrubbing policy.
    pub fn new(normalize_counts: bool) -> Self {
        TraceRecorder {
            lines: Vec::new(),
            normalize_counts,
        }
    }

    /// Records an untimestamped header/footer line.
    pub fn note(&mut self, text: impl AsRef<str>) {
        self.lines.push(truncate(text.as_ref()));
    }

    /// Records one event at virtual time `now`.  `payload` is normalized
    /// (timing scrub, optional count scrub, truncation).
    pub fn event(&mut self, now: Duration, kind: &str, payload: &str) {
        let payload = normalize_line(payload, self.normalize_counts);
        self.lines.push(format!(
            "[{:>10}us] {kind} {}",
            now.as_micros(),
            truncate(&payload)
        ));
    }

    /// Number of recorded lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The full rendered trace (one line per event, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// Normalizes one response/summary line: scrubs engine-internal timings and —
/// when `normalize_counts` — the racy match/state counters.  Control
/// characters are made visible so traces stay one event per line.
pub fn normalize_line(line: &str, normalize_counts: bool) -> String {
    let mut text = escape_controls(line);
    for key in ALWAYS_SCRUBBED {
        text = scrub_key(&text, key);
    }
    if normalize_counts {
        for key in COUNT_KEYS {
            text = scrub_key(&text, key);
        }
    }
    text
}

/// Replaces every numeric value of `"key":` in `text` with `_`.
///
/// Matches only the exact quoted key (`"matches":` will not rewrite
/// `"total_matches":` — the leading quote would not line up), and only scalar
/// values: scan stops at `,`, `}` or `]`.
fn scrub_key(text: &str, key: &str) -> String {
    let needle = format!("\"{key}\":");
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(at) = rest.find(&needle) {
        let value_start = at + needle.len();
        out.push_str(&rest[..value_start]);
        let tail = &rest[value_start..];
        let value_len = tail.find([',', '}', ']']).unwrap_or(tail.len());
        out.push('_');
        rest = &tail[value_len..];
    }
    out.push_str(rest);
    out
}

/// Escapes control characters (and the Unicode replacement char stays as-is:
/// fault scenarios produce it on purpose via lossy decoding).
fn escape_controls(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if c.is_control() => out.push_str(&format!("\\x{:02x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Deterministically truncates long payloads at a char boundary.
fn truncate(text: &str) -> String {
    if text.len() <= MAX_LINE_BYTES {
        return text.to_string();
    }
    let mut cut = MAX_LINE_BYTES;
    while !text.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}…(+{} bytes)", &text[..cut], text.len() - cut)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrubs_engine_timings_but_keeps_clock_latencies() {
        let line = r#"{"ok":true,"preprocess_seconds":1.2e-5,"match_seconds":0.003,"latency_seconds":0.25}"#;
        assert_eq!(
            normalize_line(line, false),
            r#"{"ok":true,"preprocess_seconds":_,"match_seconds":_,"latency_seconds":0.25}"#
        );
    }

    #[test]
    fn count_scrub_is_opt_in_and_exact_key_only() {
        let line =
            r#"{"matches":60,"states":120,"total_matches":60,"rows_sent":7,"rows_streamed":7}"#;
        assert_eq!(normalize_line(line, false), line);
        assert_eq!(
            normalize_line(line, true),
            r#"{"matches":_,"states":_,"total_matches":_,"rows_sent":_,"rows_streamed":_}"#
        );
    }

    #[test]
    fn scrub_does_not_cross_object_boundaries() {
        let line = r#"{"results":[{"matches":60},{"matches":20}],"total_matches":80}"#;
        assert_eq!(
            normalize_line(line, true),
            r#"{"results":[{"matches":_},{"matches":_}],"total_matches":_}"#
        );
    }

    #[test]
    fn events_are_timestamped_in_virtual_micros() {
        let mut trace = TraceRecorder::new(false);
        trace.event(Duration::from_millis(3), "response[0]", r#"{"ok":true}"#);
        assert_eq!(trace.render(), "[      3000us] response[0] {\"ok\":true}\n");
    }

    #[test]
    fn long_lines_truncate_deterministically() {
        let long = "x".repeat(MAX_LINE_BYTES + 200);
        let truncated = truncate(&long);
        assert!(truncated.len() < MAX_LINE_BYTES + 50);
        assert!(truncated.ends_with("…(+200 bytes)"));
    }

    #[test]
    fn control_bytes_stay_on_one_line() {
        assert_eq!(escape_controls("a\nb\x07c"), "a\\nb\\x07c");
    }
}

//! In-memory fault-injecting transports.
//!
//! A simulated connection is a [`ScriptReader`] (the client's scripted
//! request bytes, optionally truncated or reset mid-stream) feeding the real
//! [`sge_service::Connection`] loop, and a [`FaultWriter`] receiving the
//! server's response bytes (optionally stalling the virtual clock per line —
//! a slow reader — or failing after a line budget — a client that vanished
//! mid-response).  Both sides expose `Rc`-shared probes so the simulator can
//! observe consumed requests and produced responses without owning the
//! halves, which the connection does.
//!
//! Everything here is single-threaded by construction (`Rc`, not `Arc`):
//! determinism comes from never letting the OS scheduler pick an ordering.

use sge_util::VirtualClock;
use std::cell::{Cell, RefCell};
use std::io::{BufRead, Read, Write};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

/// How the client side of a scripted connection misbehaves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReadFault {
    /// The full script is delivered, then a clean EOF.
    #[default]
    None,
    /// The byte stream ends (clean EOF) after `at` bytes — a client that
    /// disconnected mid-line: the server sees a final line with no newline.
    TruncateAtByte(usize),
    /// Reads fail with `ConnectionReset` once `at` bytes were consumed — an
    /// aborted connection rather than a half-closed one.
    ResetAfterByte(usize),
}

/// The server side of a scripted connection: yields the client's bytes.
pub struct ScriptReader {
    data: Rc<Vec<u8>>,
    pos: Rc<Cell<usize>>,
    reset_after: Option<usize>,
}

impl ScriptReader {
    /// Wraps `script` under `fault`, returning the reader and a probe the
    /// simulator uses to see which bytes each step consumed.
    pub fn new(script: Vec<u8>, fault: ReadFault) -> (ScriptReader, ReaderProbe) {
        let (data, reset_after) = match fault {
            ReadFault::None => (script, None),
            ReadFault::TruncateAtByte(at) => {
                let mut data = script;
                data.truncate(at);
                (data, None)
            }
            ReadFault::ResetAfterByte(at) => (script, Some(at)),
        };
        let data = Rc::new(data);
        let pos = Rc::new(Cell::new(0));
        let probe = ReaderProbe {
            data: Rc::clone(&data),
            pos: Rc::clone(&pos),
        };
        (
            ScriptReader {
                data,
                pos,
                reset_after,
            },
            probe,
        )
    }
}

impl Read for ScriptReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let available = self.fill_buf()?;
        let n = available.len().min(buf.len());
        buf[..n].copy_from_slice(&available[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl BufRead for ScriptReader {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        let pos = self.pos.get().min(self.data.len());
        if let Some(reset) = self.reset_after {
            if pos >= reset && pos < self.data.len() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "simulated connection reset",
                ));
            }
        }
        Ok(&self.data[pos..])
    }

    fn consume(&mut self, amt: usize) {
        self.pos.set((self.pos.get() + amt).min(self.data.len()));
    }
}

/// Read-side observer: which script bytes have been consumed so far.
#[derive(Clone)]
pub struct ReaderProbe {
    data: Rc<Vec<u8>>,
    pos: Rc<Cell<usize>>,
}

impl ReaderProbe {
    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos.get().min(self.data.len())
    }

    /// The script text between two consumption marks (lossy UTF-8 — fault
    /// scenarios feed garbage bytes on purpose).
    pub fn text_between(&self, from: usize, to: usize) -> String {
        let to = to.min(self.data.len());
        let from = from.min(to);
        String::from_utf8_lossy(&self.data[from..to]).into_owned()
    }
}

/// How the server's writes to this client misbehave.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteFault {
    /// Virtual-clock stall charged per completed response line — a slow
    /// reader exerting backpressure (the server "blocks" in simulated time).
    pub stall_per_line: Duration,
    /// After this many complete response lines, every further write fails
    /// with `BrokenPipe` — the client disconnected mid-response (e.g.
    /// between a streamed row frame and the footer).
    pub fail_after_lines: Option<u64>,
}

impl WriteFault {
    /// A well-behaved client.
    pub fn none() -> Self {
        WriteFault::default()
    }

    /// A slow reader: every response line stalls the virtual clock.
    pub fn slow_reader(stall_per_line: Duration) -> Self {
        WriteFault {
            stall_per_line,
            ..WriteFault::default()
        }
    }

    /// A client that vanishes after reading `lines` complete response lines.
    pub fn disconnect_after_lines(lines: u64) -> Self {
        WriteFault {
            fail_after_lines: Some(lines),
            ..WriteFault::default()
        }
    }
}

/// The server side's writer: collects response bytes, injecting the
/// configured [`WriteFault`] and charging stalls to the virtual clock.
pub struct FaultWriter {
    out: Rc<RefCell<Vec<u8>>>,
    clock: Arc<VirtualClock>,
    fault: WriteFault,
    lines_written: u64,
}

impl FaultWriter {
    /// A writer stalling/failing per `fault`, charging time to `clock`.
    pub fn new(clock: Arc<VirtualClock>, fault: WriteFault) -> (FaultWriter, WriterProbe) {
        let out = Rc::new(RefCell::new(Vec::new()));
        let probe = WriterProbe {
            out: Rc::clone(&out),
        };
        (
            FaultWriter {
                out,
                clock,
                fault,
                lines_written: 0,
            },
            probe,
        )
    }
}

impl Write for FaultWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if let Some(cap) = self.fault.fail_after_lines {
            if self.lines_written >= cap {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "simulated client disconnect",
                ));
            }
        }
        let newlines = buf.iter().filter(|&&b| b == b'\n').count() as u64;
        if newlines > 0 && self.fault.stall_per_line > Duration::ZERO {
            self.clock
                .advance(self.fault.stall_per_line * newlines as u32);
        }
        self.lines_written += newlines;
        self.out.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Write-side observer: the response bytes produced so far.
#[derive(Clone)]
pub struct WriterProbe {
    out: Rc<RefCell<Vec<u8>>>,
}

impl WriterProbe {
    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.out.borrow().len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The response text written since a previous mark.
    pub fn text_since(&self, mark: usize) -> String {
        let out = self.out.borrow();
        let mark = mark.min(out.len());
        String::from_utf8_lossy(&out[mark..]).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_util::Clock;

    #[test]
    fn script_reader_yields_lines_then_eof() {
        let (mut reader, probe) = ScriptReader::new(b"STATS\nSHUTDOWN\n".to_vec(), ReadFault::None);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "STATS\n");
        assert_eq!(probe.position(), 6);
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "SHUTDOWN\n");
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0); // EOF
        assert_eq!(probe.text_between(0, 6), "STATS\n");
    }

    #[test]
    fn truncation_ends_the_stream_mid_line() {
        let (mut reader, _) = ScriptReader::new(
            b"STATS\nQUERY target=x\n".to_vec(),
            ReadFault::TruncateAtByte(9),
        );
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "STATS\n");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "QUE"); // partial line, no newline
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0);
    }

    #[test]
    fn reset_fails_further_reads() {
        let (mut reader, _) =
            ScriptReader::new(b"STATS\nMORE\n".to_vec(), ReadFault::ResetAfterByte(6));
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "STATS\n");
        line.clear();
        let err = reader.read_line(&mut line).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn fault_writer_stalls_the_clock_and_fails_after_budget() {
        let clock = Arc::new(VirtualClock::new());
        let fault = WriteFault {
            stall_per_line: Duration::from_millis(5),
            fail_after_lines: Some(2),
        };
        let (mut writer, probe) = FaultWriter::new(Arc::clone(&clock), fault);
        writeln!(writer, "one").unwrap();
        writeln!(writer, "two").unwrap();
        assert_eq!(clock.now(), Duration::from_millis(10));
        let err = writeln!(writer, "three").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        assert_eq!(probe.text_since(0), "one\ntwo\n");
    }
}

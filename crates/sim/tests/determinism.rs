//! The same-seed guarantee, asserted over the whole corpus: every scenario,
//! run twice under its pinned seed, renders the byte-identical trace.

use sge_sim::{check_determinism, corpus, run_scenario, swarm};

#[test]
fn full_corpus_runs_twice_with_byte_identical_traces() {
    let scenarios = corpus::corpus();
    assert!(
        scenarios.len() >= 8,
        "the corpus shrank below its 8-scenario floor"
    );
    for scenario in &scenarios {
        match check_determinism(scenario, scenario.seed) {
            Ok(report) => assert!(
                report.passed(),
                "scenario '{}' seed {} violated invariants: {:?}",
                scenario.name,
                scenario.seed,
                report.violations
            ),
            Err(divergence) => panic!("{divergence}"),
        }
    }
}

#[test]
fn corpus_covers_the_required_fault_classes() {
    let names: Vec<String> = corpus::corpus().into_iter().map(|s| s.name).collect();
    for required in [
        "disconnect_mid_stream",
        "slow_reader_stall",
        "oversized_line",
        "shutdown_during_drain",
        "cache_interleave",
        "metrics_and_analyze",
    ] {
        assert!(
            names.iter().any(|name| name == required),
            "corpus lost required scenario '{required}' (have: {names:?})"
        );
    }
}

#[test]
fn different_seeds_really_change_the_interleaving() {
    // Sanity check that the seed is load-bearing: the shutdown race resolves
    // differently under these two seeds (verified shapes — seed 13 serves
    // one query before the flag goes up, seed 11 serves none).
    let scenario = corpus::find("shutdown_during_drain").unwrap();
    let a = sge_sim::run_scenario_with_seed(&scenario, 13);
    let b = sge_sim::run_scenario_with_seed(&scenario, 11);
    assert_eq!(a.stats.queries_served, 1);
    assert_eq!(b.stats.queries_served, 0);
    assert_ne!(a.trace, b.trace);
}

#[test]
fn swarm_generated_scenarios_replay_bit_for_bit() {
    for seed in 1..=25u64 {
        let scenario = swarm::random_scenario(seed);
        if let Err(divergence) = check_determinism(&scenario, seed) {
            panic!("swarm seed {seed}: {divergence}");
        }
    }
}

#[test]
fn traces_embed_deterministic_clock_derived_latencies() {
    // The slow-reader scenario stalls 5 ms per response line on the virtual
    // clock; the resulting latency must appear *unscrubbed* in the trace —
    // service-level timing is part of the determinism witness.
    let scenario = corpus::find("slow_reader_stall").unwrap();
    let report = run_scenario(&scenario);
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert!(
        report.trace.contains("\"latency_seconds\":0.045"),
        "expected the 9-line x 5 ms stall to surface as latency_seconds=0.045:\n{}",
        report.trace
    );
    // Engine-internal timings measured on a raw Instant are always scrubbed.
    assert!(report.trace.contains("\"preprocess_seconds\":_"));
    assert!(!report.trace.contains("\"preprocess_seconds\":0"));
}

#[test]
fn observability_verbs_replay_with_deterministic_payloads() {
    // EXPLAIN ANALYZE's per-position counts, span timestamps and the METRICS
    // histogram summaries are all either scheduler-invariant or derived from
    // the virtual clock, so they survive in the trace unscrubbed — and the
    // corpus determinism test above proves they replay byte-for-byte.
    let scenario = corpus::find("metrics_and_analyze").unwrap();
    let report = run_scenario(&scenario);
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert!(
        report.trace.contains("\"analyze\":true"),
        "EXPLAIN ANALYZE response missing:\n{}",
        report.trace
    );
    assert!(
        report.trace.contains("\"observed_candidates\":[")
            && report.trace.contains("\"observed_states\":["),
        "observed per-position counts missing:\n{}",
        report.trace
    );
    assert!(
        report.trace.contains("\"spans\":[") && report.trace.contains("\"name\":\"enumeration\""),
        "span records missing:\n{}",
        report.trace
    );
    assert!(
        report.trace.contains("\"metrics\":{")
            && report.trace.contains("\"service.queries_served\":2"),
        "METRICS snapshot missing (one QUERY + one EXPLAIN ANALYZE served):\n{}",
        report.trace
    );
    // The analyzed run hit the cache warmed by the first QUERY; sequential
    // scheduling keeps the steal counters pinned at zero.
    assert!(report.trace.contains("\"cache.hits\":1"));
    assert!(report.trace.contains("\"engine.steals\":0"));
}

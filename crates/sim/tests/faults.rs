//! Named fault regressions, each pinned to a seed and asserted against the
//! service's own STATS counters.  These are the scenarios the simulator was
//! built to keep honest; a counter drifting here means the serving layer's
//! fault handling changed behavior.

use sge_sim::{corpus, run_scenario};

#[test]
fn slow_reader_stall_on_streamed_query() {
    // Client 0 reads each response line 5 ms late (virtual time); its
    // streamed triangle query (header + 8 frames + footer = 10 lines, the
    // last stall landing after the latency measurement) must finish with
    // the backpressure visible in the latency histogram while the fast
    // client 1 is served normally.
    let report = run_scenario(&corpus::find("slow_reader_stall").unwrap());
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert_eq!(report.stats.streams_served, 1);
    assert_eq!(report.stats.streams_cancelled, 0);
    assert_eq!(report.stats.rows_streamed, 60);
    assert_eq!(report.stats.queries_served, 2);
    assert_eq!(report.stats.errors, 0);
    // 9 lines stalled 5 ms each before the footer: 45 ms of virtual-clock
    // latency, exactly.
    assert_eq!(report.stats.latency_max_seconds, 0.045);
}

#[test]
fn disconnect_between_frame_write_and_footer() {
    // PR 5's regression path: the client vanishes after the header and two
    // row frames.  The third frame's write fails with BrokenPipe, the
    // enumeration is cancelled cooperatively, and the footer is never
    // written — while the second client keeps being served.
    let report = run_scenario(&corpus::find("disconnect_mid_stream").unwrap());
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert_eq!(report.stats.streams_served, 1);
    assert_eq!(report.stats.streams_cancelled, 1);
    // Exactly the two frames that fit the 3-line write budget (header + 2
    // frames of chunk=8) were delivered before the pipe broke.
    assert_eq!(report.stats.rows_streamed, 16);
    // The healthy client's buffered query still completed.
    assert_eq!(report.stats.queries_served, 2);
    // A cancelled stream is not a service error: the query ran and was cut
    // short by the client, which the footer (had it been deliverable) would
    // have reported as cancelled=true.
    assert_eq!(report.stats.errors, 0);
    // The trace ends the faulty connection with the transport failure.
    assert!(report.trace.contains("io-error BrokenPipe"));
    // No footer ever reached the dead client.
    assert!(!report.trace.contains("\"done\":true"));
}

#[test]
fn shutdown_racing_inflight_batch() {
    // One client submits a 3-query BATCH (header + continuation lines are
    // consumed in a single step, like the real connection loop), another
    // issues SHUTDOWN.  Under the pinned seed the batch wins the race and
    // completes in full; the batch client's trailing STATS drains unserved.
    let report = run_scenario(&corpus::find("batch_inflight_vs_shutdown").unwrap());
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert_eq!(report.stats.batches_served, 1);
    assert_eq!(report.stats.queries_served, 3);
    assert_eq!(report.stats.total_matches, 140); // 60 + 20 + 60
    assert_eq!(report.stats.errors, 0);
    assert!(report.trace.contains("shutdown-requested"));
    assert!(report.trace.contains("drained"));
    // The batch is atomic at step granularity: it either fully runs or
    // fully drains, never half.
    assert_eq!(report.stats.admissions, 3);
}

#[test]
fn shutdown_during_drain_leaves_queued_work_unserved() {
    // Seed 13 (pinned): client 0 gets one query served, then the SHUTDOWN
    // lands; clients 0 and 2 still have requests queued and drain unserved,
    // mirroring the real accept loop's flag check before each read.
    let report = run_scenario(&corpus::find("shutdown_during_drain").unwrap());
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert_eq!(report.stats.queries_served, 1);
    assert_eq!(report.stats.total_matches, 60);
    assert_eq!(report.trace.matches("drained").count(), 2);
}

#[test]
fn oversized_line_is_refused_with_a_structured_error() {
    let report = run_scenario(&corpus::find("oversized_line").unwrap());
    assert!(report.passed(), "violations: {:?}", report.violations);
    // The oversized client got the structured refusal and was closed; the
    // other client's query still ran.
    assert!(report.trace.contains("request line exceeds"));
    assert_eq!(report.stats.queries_served, 1);
}

#[test]
fn invalid_utf8_is_refused_after_valid_traffic() {
    let report = run_scenario(&corpus::find("invalid_utf8").unwrap());
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert!(report.trace.contains("not valid UTF-8"));
}

#[test]
fn reset_mid_request_surfaces_as_transport_error() {
    let report = run_scenario(&corpus::find("reset_mid_request").unwrap());
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert!(report.trace.contains("io-error ConnectionReset"));
    // The co-resident healthy client was unaffected.
    assert_eq!(report.stats.queries_served, 1);
}

#[test]
fn cache_eviction_churn_hits_only_within_capacity() {
    // Five distinct patterns through a 2-entry cache, twice over, on one
    // client: every prepare misses (the LRU evicted it before the second
    // pass), so the trace must contain no cache_hit:true on query lines.
    let report = run_scenario(&corpus::find("cache_eviction_churn").unwrap());
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert_eq!(report.stats.queries_served, 10);
    assert!(
        !report.trace.contains("\"cache_hit\":true"),
        "a 2-entry LRU cannot serve hits to a 5-pattern round-robin:\n{}",
        report.trace
    );
}

#[test]
fn sharded_scatter_gather_merges_and_breaks_down_per_shard() {
    // The 2-shard coordinator serves a buffered and a streamed triangle
    // query over a vertex-cut clique(5): the merged counts equal the
    // unsharded answer (60 directed triangles), and every response carries
    // the per-shard "shards" breakdown.
    let report = run_scenario(&corpus::find("sharded_scatter_gather").unwrap());
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert_eq!(report.stats.queries_served, 2);
    assert_eq!(report.stats.total_matches, 120);
    assert_eq!(report.stats.streams_served, 1);
    assert_eq!(report.stats.rows_streamed, 60);
    assert_eq!(report.stats.streams_cancelled, 0);
    assert_eq!(report.stats.errors, 0);
    assert!(report.trace.contains("# shards 2"));
    assert!(report.trace.contains("\"shards\":[{\"shard\":0"));
    assert!(report.trace.contains("\"matches\":60"));
    // The coordinator's own metric family fronts the METRICS snapshot.
    assert!(report.trace.contains("\"coordinator.admissions\":"));
}

#[test]
fn sharded_disconnect_severs_bridges_and_counts_the_cancel() {
    // The client vanishes after the stream header and two row frames: the
    // coordinator severs the per-shard bridges (remaining shards cancel
    // cooperatively), counts the stream under coordinator
    // streams_cancelled, and keeps serving the healthy client.
    let report = run_scenario(&corpus::find("shard_disconnect_mid_stream").unwrap());
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert_eq!(report.stats.streams_served, 1);
    assert_eq!(report.stats.streams_cancelled, 1);
    // Header + two chunk=8 frames fit the 3-line write budget.
    assert_eq!(report.stats.rows_streamed, 16);
    // The healthy client's buffered query still completed.
    assert_eq!(report.stats.queries_served, 2);
    // A client-side disconnect is not a service error.
    assert_eq!(report.stats.errors, 0);
    assert!(report.trace.contains("io-error BrokenPipe"));
    assert!(!report.trace.contains("\"done\":true"));
}

//! The work-stealing engine: shared arrays, the worker loop and the driver.
//!
//! The worker main loop is a direct transcription of Fig. 2 of the paper:
//!
//! ```text
//! while not terminated:
//!     if q.is_empty():
//!         acquire_task(worker)
//!     task = q.pop()
//!     work_available[worker] = not q.is_empty()
//!     process_task_requests(worker)
//!     execute(task)
//! ```
//!
//! Three shared arrays coordinate the workers (Section 3.2):
//!
//! * `work_available` — one boolean per worker: does it currently have
//!   stealable tasks?
//! * `requests` — one slot per worker; thieves CAS their own id into a
//!   victim's slot (only one request per victim at a time, as in the paper's
//!   use of `std::atomic_compare_exchange_weak`),
//! * `transfers` — one cell per *thief*, through which the victim hands over a
//!   stolen task group together with the prefix of choices it needs.

use crate::problem::BacktrackProblem;
use crate::stats::{RunResult, WorkerStats};
use crate::task::{PrivateDeque, TaskGroup, Transfer};
use crate::termination::Termination;
use sge_util::{CancelToken, MatchBudget, SplitMix64};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Sentinel meaning "no pending steal request".
const NO_REQUEST: usize = usize::MAX;

/// How often (in executed tasks / spin iterations) the wall clock is consulted
/// for the time limit.
const DEADLINE_CHECK_INTERVAL: u64 = 1024;

/// Configuration of one parallel run.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Number of worker threads.
    pub num_workers: usize,
    /// Task-group (coalescing) size; the paper settles on 4.
    pub task_group_size: usize,
    /// When `false`, workers only process their initial share (the "no work
    /// stealing" baseline of Fig. 3).
    pub steal_enabled: bool,
    /// Optional wall-clock limit for the whole parallel phase.
    pub time_limit: Option<Duration>,
    /// Stop cooperatively once this many solutions have been recorded across
    /// all workers (`None` = run to exhaustion).  The engine guarantees that
    /// exactly `min(max_solutions, total)` solutions are counted and reported
    /// to [`BacktrackProblem::on_solution`].
    pub max_solutions: Option<u64>,
    /// External cooperative cancellation: when the token fires, termination
    /// is forced exactly as if the solution budget had been exhausted, and
    /// the result reports `cancelled`.  Solutions discovered after the token
    /// fires are discarded, not counted.
    pub cancel: Option<Arc<CancelToken>>,
    /// Seed for the (deterministic per worker) victim-selection RNG.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            task_group_size: 4,
            steal_enabled: true,
            time_limit: None,
            max_solutions: None,
            cancel: None,
            seed: 0x5EED_1234_ABCD,
        }
    }
}

impl EngineConfig {
    /// Convenience constructor with `workers` threads and the paper's default
    /// task-group size of 4.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig {
            num_workers: workers,
            ..EngineConfig::default()
        }
    }

    /// Sets the task-group size.
    pub fn task_group_size(mut self, size: usize) -> Self {
        self.task_group_size = size.max(1);
        self
    }

    /// Enables or disables stealing.
    pub fn steal(mut self, enabled: bool) -> Self {
        self.steal_enabled = enabled;
        self
    }

    /// Sets a wall-clock time limit.
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Stops the run cooperatively after `limit` solutions.
    pub fn max_solutions(mut self, limit: u64) -> Self {
        self.max_solutions = Some(limit);
        self
    }

    /// Attaches an external cancellation token.
    pub fn cancel_token(mut self, token: Arc<CancelToken>) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// One thief's transfer mailbox.
enum TransferCell<C> {
    /// No answer yet.
    Empty,
    /// The victim had nothing to give (or is shutting down).
    Reject,
    /// A stolen task group plus the prefix needed to run it.
    Task(Transfer<C>),
}

/// State shared by all workers of one run.
struct Shared<C> {
    work_available: Vec<AtomicBool>,
    requests: Vec<AtomicUsize>,
    transfers: Vec<Mutex<TransferCell<C>>>,
    termination: Termination,
    deadline: Option<Instant>,
    timed_out: AtomicBool,
    /// Budget of countable solutions (`EngineConfig::max_solutions`); claims
    /// beyond it are discarded, so the counted total is exact.
    budget: MatchBudget,
    cancel: Option<Arc<CancelToken>>,
    cancelled: AtomicBool,
}

impl<C> Shared<C> {
    fn new(workers: usize, deadline: Option<Instant>, config: &EngineConfig) -> Self {
        Shared {
            work_available: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            requests: (0..workers).map(|_| AtomicUsize::new(NO_REQUEST)).collect(),
            transfers: (0..workers)
                .map(|_| Mutex::new(TransferCell::Empty))
                .collect(),
            termination: Termination::new(workers),
            deadline,
            timed_out: AtomicBool::new(false),
            budget: MatchBudget::new(config.max_solutions),
            cancel: config.cancel.clone(),
            cancelled: AtomicBool::new(false),
        }
    }

    /// Checks the global deadline; on expiry forces termination.
    fn check_deadline(&self) {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.timed_out.store(true, Ordering::SeqCst);
                self.termination.force();
            }
        }
    }

    /// `true` once the external cancellation token has fired; latches the
    /// `cancelled` result flag and forces termination the first time it is
    /// observed.
    fn cancel_requested(&self) -> bool {
        match &self.cancel {
            Some(token) if token.is_cancelled() => {
                self.cancelled.store(true, Ordering::SeqCst);
                self.termination.force();
                true
            }
            _ => false,
        }
    }

    /// The per-tick interrupt poll: cancellation, then the deadline.
    fn check_interrupts(&self) {
        self.cancel_requested();
        self.check_deadline();
    }
}

struct Worker<'a, P: BacktrackProblem> {
    id: usize,
    problem: &'a P,
    shared: &'a Shared<P::Choice>,
    config: &'a EngineConfig,
    deque: PrivateDeque<P::Choice>,
    state: P::State,
    /// Choices applied so far, by level; `path.len()` is the applied depth.
    path: Vec<P::Choice>,
    total_depth: usize,
    stats: WorkerStats,
    rng: SplitMix64,
    cand_buf: Vec<P::Choice>,
    ticks: u64,
}

impl<'a, P: BacktrackProblem> Worker<'a, P> {
    fn new(
        id: usize,
        problem: &'a P,
        shared: &'a Shared<P::Choice>,
        config: &'a EngineConfig,
    ) -> Self {
        Worker {
            id,
            problem,
            shared,
            config,
            deque: PrivateDeque::new(),
            state: problem.new_state(),
            path: Vec::new(),
            total_depth: problem.depth(),
            stats: WorkerStats {
                worker_id: id,
                ..WorkerStats::default()
            },
            rng: SplitMix64::new(config.seed ^ (id as u64).wrapping_mul(0x9E37_79B9)),
            cand_buf: Vec::new(),
            ticks: 0,
        }
    }

    /// Undoes applied levels until only `depth` of them remain.
    fn rewind_to(&mut self, depth: usize) {
        while self.path.len() > depth {
            let level = self.path.len() - 1;
            self.problem.undo(level, &mut self.state);
            self.path.pop();
        }
    }

    /// Executes one task: apply the choice and either record a solution or
    /// spawn the (pre-checked) children as new task groups at the front of the
    /// private deque.
    fn execute(&mut self, depth: usize, choice: P::Choice, checked: bool) {
        self.rewind_to(depth);
        self.stats.tasks_executed += 1;
        if !checked {
            // Root-distribution tasks are enqueued unchecked (Section 3.3);
            // their consistency check happens here and counts as a state.
            self.stats.states += 1;
            if !self.problem.is_consistent(depth, choice, &self.state) {
                return;
            }
        }
        self.problem.apply(depth, choice, &mut self.state);
        self.path.push(choice);

        if depth + 1 == self.total_depth {
            if self.claim_solution() {
                self.stats.solutions += 1;
                self.problem.on_solution(self.id, &self.state);
            }
            return;
        }

        let mut cands = std::mem::take(&mut self.cand_buf);
        self.problem.candidates(depth + 1, &self.state, &mut cands);
        let mut consistent: Vec<P::Choice> = Vec::with_capacity(cands.len());
        for &c in cands.iter() {
            // Consistency is verified *before* spawning (Section 3.1), so
            // thieves do not steal dead ends; each check is a visited state.
            self.stats.states += 1;
            if self.problem.is_consistent(depth + 1, c, &self.state) {
                consistent.push(c);
            }
        }
        self.cand_buf = cands;

        if consistent.is_empty() {
            return;
        }
        let group_size = self.config.task_group_size.max(1);
        // Push chunks in reverse so the first chunk ends up at the very front
        // and the sequential (depth-first) exploration order is preserved.
        let mut chunks: Vec<TaskGroup<P::Choice>> = consistent
            .chunks(group_size)
            .map(|chunk| TaskGroup::new(depth + 1, chunk.to_vec(), true))
            .collect();
        while let Some(group) = chunks.pop() {
            self.deque.push_front(group);
        }
    }

    /// Claims one slot of the shared solution budget.  Returns `true` when the
    /// solution should be counted; once the budget is exhausted termination is
    /// forced so all workers stop promptly, and over-claims are discarded —
    /// the run reports exactly `min(max_solutions, total)` solutions.
    ///
    /// An external cancellation trips this path too: solutions found after
    /// the token fired are discarded, so cancellation behaves exactly like a
    /// budget that ran out the moment the token fired.
    fn claim_solution(&mut self) -> bool {
        if self.shared.cancel_requested() {
            return false;
        }
        let counted = self.shared.budget.claim();
        if self.shared.budget.is_exhausted() {
            self.shared.termination.force();
        }
        counted
    }

    /// Answers at most one pending steal request: hand over the back group (and
    /// the prefix of choices it needs) if we have one to spare, reject
    /// otherwise.
    fn process_requests(&mut self) {
        let thief = self.shared.requests[self.id].load(Ordering::SeqCst);
        if thief == NO_REQUEST || thief == self.id {
            return;
        }
        let answer = if self.shared.termination.is_terminated() {
            TransferCell::Reject
        } else {
            match self.deque.steal_back() {
                Some(group) => {
                    let prefix = self.path[..group.depth].to_vec();
                    self.stats.tasks_sent += 1;
                    // Sending work may re-activate an idle worker: mark this
                    // worker black for the termination ring.
                    self.shared.termination.mark_black(self.id);
                    TransferCell::Task(Transfer { prefix, group })
                }
                None => TransferCell::Reject,
            }
        };
        *self.shared.transfers[thief].lock().expect("mutex poisoned") = answer;
        // Accept new requests only after the answer is visible to the thief.
        self.shared.requests[self.id].store(NO_REQUEST, Ordering::SeqCst);
        self.shared.work_available[self.id].store(!self.deque.is_empty(), Ordering::SeqCst);
    }

    /// Installs a stolen transfer: replay the prefix, then adopt the group.
    fn install(&mut self, transfer: Transfer<P::Choice>) {
        self.rewind_to(0);
        for (level, &choice) in transfer.prefix.iter().enumerate() {
            self.problem.apply(level, choice, &mut self.state);
            self.path.push(choice);
        }
        self.deque.push_front(transfer.group);
        self.shared.work_available[self.id].store(true, Ordering::SeqCst);
    }

    fn tick(&mut self) {
        self.ticks += 1;
        if self.ticks.is_multiple_of(DEADLINE_CHECK_INTERVAL) {
            self.shared.check_interrupts();
        }
    }

    /// Receiver-initiated steal loop: repeatedly request work from a random
    /// victim until a task group arrives or termination is detected.  Returns
    /// `true` when work was obtained.
    fn acquire(&mut self) -> bool {
        self.shared.work_available[self.id].store(false, Ordering::SeqCst);
        let workers = self.config.num_workers;
        let mut spins: u64 = 0;
        loop {
            if self.shared.termination.is_terminated() {
                return false;
            }
            self.tick();
            // While idle we still answer requests (with a rejection) and keep
            // the termination token moving.
            self.process_requests();
            if self.shared.termination.poll_idle(self.id) {
                return false;
            }

            // Pick a random victim that advertises work.
            let victim = self.rng.next_below(workers);
            if victim != self.id && self.shared.work_available[victim].load(Ordering::SeqCst) {
                self.stats.steal_requests += 1;
                if self.shared.requests[victim]
                    .compare_exchange(NO_REQUEST, self.id, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    // Wait for the victim's answer.  The token is NOT
                    // forwarded while the request is pending: a transfer the
                    // victim already committed to may still be sitting unread
                    // in our mailbox, and the ring would otherwise be able to
                    // complete a white round around us and declare
                    // termination with that stolen task group in flight
                    // (dropping its whole subtree).  Holding the token here
                    // makes delivery look instantaneous to the Dijkstra ring;
                    // every victim answers every request (even while idle or
                    // winding down), so the wait always ends.
                    let mut waits: u64 = 0;
                    loop {
                        if self.shared.termination.is_terminated() {
                            return false;
                        }
                        self.tick();
                        self.process_requests();
                        let mut cell = self.shared.transfers[self.id]
                            .lock()
                            .expect("mutex poisoned");
                        match std::mem::replace(&mut *cell, TransferCell::Empty) {
                            TransferCell::Empty => {
                                drop(cell);
                                waits += 1;
                                if waits.is_multiple_of(8) {
                                    // Oversubscribed hosts (fewer cores than
                                    // workers) need the victim to get CPU time
                                    // to answer; yield rather than burn quanta.
                                    std::thread::yield_now();
                                } else {
                                    std::hint::spin_loop();
                                }
                            }
                            TransferCell::Reject => break,
                            TransferCell::Task(transfer) => {
                                drop(cell);
                                self.stats.steals += 1;
                                self.install(transfer);
                                return true;
                            }
                        }
                    }
                }
            }

            spins += 1;
            if spins.is_multiple_of(8) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// The worker main loop (paper Fig. 2).
    fn run(&mut self) {
        let start = Instant::now();
        loop {
            if self.shared.termination.is_terminated() {
                break;
            }
            self.tick();
            if self.deque.is_empty() {
                if !self.config.steal_enabled {
                    // Static initial partition only (Fig. 3 baseline).
                    break;
                }
                if !self.acquire() {
                    break;
                }
                continue;
            }
            let (depth, choice, checked) = self.deque.pop_task().expect("deque reported non-empty");
            self.shared.work_available[self.id].store(!self.deque.is_empty(), Ordering::SeqCst);
            self.process_requests();
            self.execute(depth, choice, checked);
        }
        // Final courtesy: make sure no thief is left waiting on us.
        self.process_requests();
        self.stats.busy_seconds = start.elapsed().as_secs_f64();
    }
}

/// Runs the parallel backtracking search over `problem`.
///
/// The children of the state-space root are distributed round-robin over the
/// workers' private deques (Section 3.3); from then on the receiver-initiated
/// work-stealing protocol balances the load.
///
/// A problem with `depth() == 0` has exactly one (empty) solution.
pub fn run<P: BacktrackProblem>(problem: &P, config: &EngineConfig) -> RunResult {
    let start = Instant::now();
    let workers = config.num_workers.max(1);
    let total_depth = problem.depth();

    if total_depth == 0 {
        let mut stats = vec![WorkerStats::default(); workers];
        for (id, w) in stats.iter_mut().enumerate() {
            w.worker_id = id;
        }
        // The empty problem has one (empty) solution, unless the budget is 0.
        let budget = MatchBudget::new(config.max_solutions);
        if budget.claim() {
            stats[0].solutions = 1;
            problem.on_solution(0, &problem.new_state());
        }
        let mut result = RunResult::from_workers(stats, start.elapsed().as_secs_f64(), false);
        result.limit_hit = budget.is_exhausted();
        return result;
    }

    // Initial work distribution: one task per child of the root, dealt
    // round-robin, enqueued unchecked.
    let init_state = problem.new_state();
    let mut roots: Vec<P::Choice> = Vec::new();
    problem.candidates(0, &init_state, &mut roots);
    let mut per_worker: Vec<Vec<P::Choice>> = vec![Vec::new(); workers];
    for (i, choice) in roots.into_iter().enumerate() {
        per_worker[i % workers].push(choice);
    }

    let deadline = config.time_limit.map(|limit| start + limit);
    let shared: Shared<P::Choice> = Shared::new(workers, deadline, config);
    // An already-expired deadline (or an already-fired cancellation token)
    // forces termination before any worker runs, so every scheduler agrees
    // on the degenerate outcome (zero work) instead of racing the periodic
    // per-worker interrupt checks.
    shared.check_interrupts();
    let group_size = config.task_group_size.max(1);

    let worker_stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        let shared = &shared;
        let handles: Vec<_> = per_worker
            .into_iter()
            .enumerate()
            .map(|(id, share)| {
                scope.spawn(move || {
                    let mut worker = Worker::new(id, problem, shared, config);
                    for chunk in share.chunks(group_size) {
                        worker
                            .deque
                            .push_back(TaskGroup::new(0, chunk.to_vec(), false));
                    }
                    shared.work_available[id].store(!worker.deque.is_empty(), Ordering::SeqCst);
                    worker.run();
                    worker.stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("worker thread panicked"))
            .collect()
    });

    let mut result = RunResult::from_workers(
        worker_stats,
        start.elapsed().as_secs_f64(),
        shared.timed_out.load(Ordering::SeqCst),
    );
    result.limit_hit = shared.budget.is_exhausted();
    result.cancelled = shared.cancelled.load(Ordering::SeqCst);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// N-Queens as a [`BacktrackProblem`]: level = row, choice = column.
    struct NQueens {
        n: usize,
    }

    struct QueensState {
        columns: Vec<u32>,
    }

    impl BacktrackProblem for NQueens {
        type State = QueensState;
        type Choice = u32;

        fn depth(&self) -> usize {
            self.n
        }

        fn new_state(&self) -> QueensState {
            QueensState {
                columns: Vec::new(),
            }
        }

        fn candidates(&self, _level: usize, _state: &QueensState, out: &mut Vec<u32>) {
            out.clear();
            out.extend(0..self.n as u32);
        }

        fn is_consistent(&self, level: usize, choice: u32, state: &QueensState) -> bool {
            state
                .columns
                .iter()
                .enumerate()
                .take(level)
                .all(|(row, &col)| {
                    col != choice && (level - row) as i64 != (choice as i64 - col as i64).abs()
                })
        }

        fn apply(&self, _level: usize, choice: u32, state: &mut QueensState) {
            state.columns.push(choice);
        }

        fn undo(&self, _level: usize, state: &mut QueensState) {
            state.columns.pop();
        }
    }

    fn queens_solutions(n: usize) -> u64 {
        // Known values of the N-Queens sequence (OEIS A000170).
        [1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724][n]
    }

    #[test]
    fn single_worker_matches_known_counts() {
        for n in [4usize, 5, 6, 7, 8] {
            let problem = NQueens { n };
            let result = run(&problem, &EngineConfig::with_workers(1));
            assert_eq!(result.solutions, queens_solutions(n), "n={n}");
            assert!(!result.timed_out);
        }
    }

    #[test]
    fn multiple_workers_match_known_counts() {
        for workers in [2usize, 3, 4, 8] {
            let problem = NQueens { n: 8 };
            let result = run(&problem, &EngineConfig::with_workers(workers));
            assert_eq!(result.solutions, 92, "workers={workers}");
            assert_eq!(result.workers.len(), workers);
        }
    }

    #[test]
    fn states_are_independent_of_worker_count() {
        let problem = NQueens { n: 7 };
        let sequential = run(&problem, &EngineConfig::with_workers(1));
        for workers in [2usize, 4, 6] {
            let parallel = run(&problem, &EngineConfig::with_workers(workers));
            assert_eq!(parallel.states, sequential.states, "workers={workers}");
            assert_eq!(parallel.solutions, sequential.solutions);
        }
    }

    #[test]
    fn task_group_size_does_not_change_results() {
        let problem = NQueens { n: 7 };
        let reference = run(&problem, &EngineConfig::with_workers(3)).solutions;
        for group_size in [1usize, 2, 4, 8, 16] {
            let result = run(
                &problem,
                &EngineConfig::with_workers(3).task_group_size(group_size),
            );
            assert_eq!(result.solutions, reference, "group_size={group_size}");
        }
    }

    #[test]
    fn no_steal_mode_still_finds_all_solutions() {
        let problem = NQueens { n: 8 };
        let result = run(&problem, &EngineConfig::with_workers(4).steal(false));
        assert_eq!(result.solutions, 92);
        assert_eq!(result.steals, 0);
    }

    #[test]
    fn stealing_happens_with_imbalanced_initial_work() {
        // With 8 workers on an 9-queens instance there are only 9 root tasks
        // with very different subtree sizes — stealing should occur.  Whether
        // it *does* depends on the OS schedule: on a single-core host a
        // worker often drains its whole subtree before a would-be thief ever
        // runs, so the steal assertion holds over a bounded retry loop while
        // the solution count must be exact on every run.
        let problem = NQueens { n: 9 };
        let mut steals = 0;
        for _ in 0..20 {
            let result = run(&problem, &EngineConfig::with_workers(8));
            assert_eq!(result.solutions, 352);
            steals += result.steals;
            if steals > 0 {
                break;
            }
        }
        assert!(
            steals > 0,
            "expected at least one steal with imbalanced roots across 20 schedules"
        );
    }

    #[test]
    fn more_workers_than_root_tasks() {
        let problem = NQueens { n: 5 };
        let result = run(&problem, &EngineConfig::with_workers(12));
        assert_eq!(result.solutions, 10);
    }

    #[test]
    fn unsolvable_instance_terminates_with_zero_solutions() {
        let problem = NQueens { n: 3 };
        for workers in [1usize, 2, 4] {
            let result = run(&problem, &EngineConfig::with_workers(workers));
            assert_eq!(result.solutions, 0, "workers={workers}");
        }
    }

    #[test]
    fn zero_depth_problem_has_one_solution() {
        let problem = NQueens { n: 0 };
        let result = run(&problem, &EngineConfig::with_workers(4));
        assert_eq!(result.solutions, 1);
    }

    #[test]
    fn solution_budget_stops_early_and_is_exact() {
        let problem = NQueens { n: 8 };
        for workers in [1usize, 3, 6] {
            let config = EngineConfig::with_workers(workers).max_solutions(10);
            let result = run(&problem, &config);
            assert_eq!(result.solutions, 10, "workers={workers}");
            assert!(result.limit_hit);
            let counted: u64 = result.workers.iter().map(|w| w.solutions).sum();
            assert_eq!(counted, 10);
        }
        // A budget larger than the solution count changes nothing.
        let config = EngineConfig::with_workers(2).max_solutions(1000);
        let result = run(&problem, &config);
        assert_eq!(result.solutions, 92);
        assert!(!result.limit_hit);
        // A zero budget yields zero solutions, even for zero-depth problems.
        let result = run(&problem, &EngineConfig::with_workers(2).max_solutions(0));
        assert_eq!(result.solutions, 0);
        let result = run(
            &NQueens { n: 0 },
            &EngineConfig::with_workers(2).max_solutions(0),
        );
        assert_eq!(result.solutions, 0);
    }

    #[test]
    fn slow_solution_observers_lose_no_solutions() {
        // A blocking on_solution (the streaming bridge blocks on a bounded
        // channel) drastically changes steal timing; counts must not change.
        struct SlowQueens {
            inner: NQueens,
        }
        impl BacktrackProblem for SlowQueens {
            type State = QueensState;
            type Choice = u32;
            fn depth(&self) -> usize {
                self.inner.depth()
            }
            fn new_state(&self) -> QueensState {
                self.inner.new_state()
            }
            fn candidates(&self, level: usize, state: &QueensState, out: &mut Vec<u32>) {
                self.inner.candidates(level, state, out);
            }
            fn is_consistent(&self, level: usize, choice: u32, state: &QueensState) -> bool {
                self.inner.is_consistent(level, choice, state)
            }
            fn apply(&self, level: usize, choice: u32, state: &mut QueensState) {
                self.inner.apply(level, choice, state);
            }
            fn undo(&self, level: usize, state: &mut QueensState) {
                self.inner.undo(level, state);
            }
            fn on_solution(&self, _worker_id: usize, _state: &QueensState) {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        for trial in 0..20 {
            let problem = SlowQueens {
                inner: NQueens { n: 7 },
            };
            let result = run(&problem, &EngineConfig::with_workers(2));
            assert_eq!(result.solutions, 40, "trial {trial}");
        }
    }

    #[test]
    fn pre_cancelled_token_stops_the_run_with_zero_work() {
        let problem = NQueens { n: 9 };
        let token = Arc::new(CancelToken::new());
        token.cancel();
        for workers in [1usize, 4] {
            let result = run(
                &problem,
                &EngineConfig::with_workers(workers).cancel_token(Arc::clone(&token)),
            );
            assert!(result.cancelled, "workers={workers}");
            assert_eq!(result.solutions, 0, "workers={workers}");
            assert!(!result.limit_hit);
            assert!(!result.timed_out);
        }
    }

    #[test]
    fn cancellation_mid_run_discards_later_solutions() {
        /// Cancels its own run after observing `after` solutions.
        struct SelfCancelling {
            inner: NQueens,
            token: Arc<CancelToken>,
            seen: std::sync::atomic::AtomicU64,
            after: u64,
        }
        impl BacktrackProblem for SelfCancelling {
            type State = QueensState;
            type Choice = u32;
            fn depth(&self) -> usize {
                self.inner.depth()
            }
            fn new_state(&self) -> QueensState {
                self.inner.new_state()
            }
            fn candidates(&self, level: usize, state: &QueensState, out: &mut Vec<u32>) {
                self.inner.candidates(level, state, out);
            }
            fn is_consistent(&self, level: usize, choice: u32, state: &QueensState) -> bool {
                self.inner.is_consistent(level, choice, state)
            }
            fn apply(&self, level: usize, choice: u32, state: &mut QueensState) {
                self.inner.apply(level, choice, state);
            }
            fn undo(&self, level: usize, state: &mut QueensState) {
                self.inner.undo(level, state);
            }
            fn on_solution(&self, _worker_id: usize, _state: &QueensState) {
                if self.seen.fetch_add(1, Ordering::SeqCst) + 1 >= self.after {
                    self.token.cancel();
                }
            }
        }
        let token = Arc::new(CancelToken::new());
        let problem = SelfCancelling {
            inner: NQueens { n: 8 },
            token: Arc::clone(&token),
            seen: std::sync::atomic::AtomicU64::new(0),
            after: 5,
        };
        let result = run(&problem, &EngineConfig::with_workers(3).cancel_token(token));
        assert!(result.cancelled);
        assert!(result.solutions < 92, "cancellation cut the run short");
        assert!(result.solutions >= 5, "counted solutions before the cancel");
    }

    #[test]
    fn time_limit_forces_termination() {
        let problem = NQueens { n: 10 };
        let config = EngineConfig::with_workers(2).time_limit(Duration::from_millis(1));
        let result = run(&problem, &config);
        // Either it finished incredibly fast or it was cut off; both are fine,
        // but the run must return promptly and report consistently.
        if result.timed_out {
            assert!(result.solutions <= 724);
        } else {
            assert_eq!(result.solutions, 724);
        }
    }

    #[test]
    fn worker_stats_are_populated() {
        let problem = NQueens { n: 7 };
        let result = run(&problem, &EngineConfig::with_workers(3));
        assert_eq!(result.workers.len(), 3);
        let total: u64 = result.workers.iter().map(|w| w.states).sum();
        assert_eq!(total, result.states);
        assert!(result.workers.iter().all(|w| w.busy_seconds >= 0.0));
        assert!(result.elapsed_seconds > 0.0);
    }
}

//! Work stealing with private deques for parallel backtracking search.
//!
//! This crate implements the scheduling strategy of Section 3 of the paper —
//! itself an instantiation of *work stealing with private deques* (Acar,
//! Charguéraud, Rainey, PPoPP 2013) — as a reusable engine for depth-first
//! backtracking problems:
//!
//! * every worker owns a **private deque** of task groups; the front is used
//!   in LIFO (depth-first) order by the owner, the back is the steal end,
//! * **receiver-initiated stealing**: an idle worker publishes a request in a
//!   shared `requests` slot of a random victim; busy workers poll their slot
//!   once per executed task and answer through a `transfers` cell,
//! * a task is just a `(depth, choice)` pair — the partial assignment is *not*
//!   copied per task; it travels (as a prefix of choices) only when a task
//!   group is stolen,
//! * **task coalescing**: sibling tasks are grouped into task groups of a
//!   configurable size (the paper settles on 4) which are the unit of
//!   stealing,
//! * spawned tasks are **consistency-checked before being enqueued**, so
//!   thieves rarely steal dead ends,
//! * termination is detected with the **Dijkstra ring token** algorithm
//!   (white/black token passed by idle workers).
//!
//! The engine is generic over a [`BacktrackProblem`]; `sge-parallel` plugs the
//! RI / RI-DS search into it, and the test-suite exercises it with independent
//! toy problems (N-Queens, bounded trees) so scheduler bugs are not masked by
//! matcher bugs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod problem;
pub mod stats;
pub mod task;
pub mod termination;

pub use engine::{run, EngineConfig};
pub use problem::BacktrackProblem;
pub use stats::{RunResult, WorkerStats};
pub use task::{TaskGroup, Transfer};

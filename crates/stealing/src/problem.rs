//! The abstraction the engine parallelizes.

/// A depth-first backtracking problem with a fixed number of levels.
///
/// The engine explores the state-space tree whose nodes at depth `d` are the
/// consistent choices for level `d` given the choices made at levels
/// `0..d`.  A *solution* is a consistent assignment of all
/// [`BacktrackProblem::depth`] levels.
///
/// Implementations must be cheap to share between threads (`Sync`); all
/// per-worker mutable data lives in [`BacktrackProblem::State`], of which the
/// engine creates one instance per worker.  Because the engine transfers only
/// *prefixes of choices* between workers (never whole states), `apply`/`undo`
/// must be able to reconstruct any state from a sequence of choices.
pub trait BacktrackProblem: Sync {
    /// Per-worker mutable search state (partial assignment plus whatever
    /// auxiliary structures make `is_consistent` fast).
    type State: Send;

    /// A choice at one level, e.g. a candidate target node.  Must be small and
    /// `Copy`: tasks and stolen prefixes are built from these.
    type Choice: Copy + Send + Sync;

    /// Number of levels; a complete assignment has exactly this many choices.
    fn depth(&self) -> usize;

    /// A fresh state with no choices applied.
    fn new_state(&self) -> Self::State;

    /// Writes the raw (unchecked) candidate choices for `level` into `out`,
    /// given that levels `0..level` are applied in `state`.  `out` is cleared
    /// by the callee.
    fn candidates(&self, level: usize, state: &Self::State, out: &mut Vec<Self::Choice>);

    /// Is `choice` consistent at `level`, given the applied prefix `0..level`?
    fn is_consistent(&self, level: usize, choice: Self::Choice, state: &Self::State) -> bool;

    /// Applies `choice` at `level` (levels `0..level` are already applied).
    fn apply(&self, level: usize, choice: Self::Choice, state: &mut Self::State);

    /// Undoes the choice previously applied at `level` (deeper levels are
    /// already undone).
    fn undo(&self, level: usize, state: &mut Self::State);

    /// Called once per complete consistent assignment, on the worker that
    /// found it, with all levels applied.  Implementations that need to
    /// collect solutions can use interior mutability (e.g. a mutex-protected
    /// vector); the engine itself only counts.
    fn on_solution(&self, _worker_id: usize, _state: &Self::State) {}
}

//! Per-worker and per-run statistics.
//!
//! The paper's evaluation relies on more than wall-clock time: Fig. 3 plots
//! the *standard deviation of the per-worker search space* (how unevenly the
//! states were distributed without stealing), and Fig. 4 plots the *number of
//! steals* per task-group size.  Every worker therefore keeps its own counters
//! and the engine aggregates them into a [`RunResult`].

/// Counters collected by one worker during a run.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Worker index.
    pub worker_id: usize,
    /// States visited: consistency checks performed by this worker.
    pub states: u64,
    /// Complete solutions found by this worker.
    pub solutions: u64,
    /// Tasks executed (choices taken from the private deque).
    pub tasks_executed: u64,
    /// Successful steals performed by this worker (task groups received).
    pub steals: u64,
    /// Steal requests this worker issued (successful or not).
    pub steal_requests: u64,
    /// Task groups this worker handed to thieves.
    pub tasks_sent: u64,
    /// Wall-clock seconds this worker spent before terminating.
    pub busy_seconds: f64,
}

/// Aggregated outcome of one parallel run.
#[derive(Clone, Debug, Default)]
pub struct RunResult {
    /// Total number of solutions found.
    pub solutions: u64,
    /// Total states visited (sum over workers).
    pub states: u64,
    /// Total successful steals.
    pub steals: u64,
    /// Total steal requests issued.
    pub steal_requests: u64,
    /// Wall-clock seconds for the whole parallel phase.
    pub elapsed_seconds: f64,
    /// `true` when the run was cut short by the configured time limit.
    pub timed_out: bool,
    /// `true` when the run stopped because the solution budget
    /// (`EngineConfig::max_solutions`) was exhausted.
    pub limit_hit: bool,
    /// `true` when the run stopped because the external cancellation token
    /// (`EngineConfig::cancel`) fired.
    pub cancelled: bool,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerStats>,
}

impl RunResult {
    /// Builds the aggregate from per-worker stats.
    pub fn from_workers(workers: Vec<WorkerStats>, elapsed_seconds: f64, timed_out: bool) -> Self {
        let solutions = workers.iter().map(|w| w.solutions).sum();
        let states = workers.iter().map(|w| w.states).sum();
        let steals = workers.iter().map(|w| w.steals).sum();
        let steal_requests = workers.iter().map(|w| w.steal_requests).sum();
        RunResult {
            solutions,
            states,
            steals,
            steal_requests,
            elapsed_seconds,
            timed_out,
            limit_hit: false,
            cancelled: false,
            workers,
        }
    }

    /// Standard deviation of the per-worker states — the load-imbalance metric
    /// of Fig. 3 (population standard deviation).
    pub fn worker_states_stddev(&self) -> f64 {
        let n = self.workers.len();
        if n == 0 {
            return 0.0;
        }
        let mean = self.states as f64 / n as f64;
        let var = self
            .workers
            .iter()
            .map(|w| {
                let d = w.states as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        var.sqrt()
    }

    /// States per second of elapsed wall-clock time.
    pub fn states_per_second(&self) -> f64 {
        if self.elapsed_seconds > 0.0 {
            self.states as f64 / self.elapsed_seconds
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(id: usize, states: u64, steals: u64, solutions: u64) -> WorkerStats {
        WorkerStats {
            worker_id: id,
            states,
            solutions,
            steals,
            ..WorkerStats::default()
        }
    }

    #[test]
    fn aggregation_sums_counters() {
        let result =
            RunResult::from_workers(vec![worker(0, 10, 1, 2), worker(1, 30, 3, 4)], 2.0, false);
        assert_eq!(result.states, 40);
        assert_eq!(result.steals, 4);
        assert_eq!(result.solutions, 6);
        assert!((result.states_per_second() - 20.0).abs() < 1e-12);
        assert!(!result.timed_out);
    }

    #[test]
    fn stddev_zero_for_balanced_workers() {
        let result =
            RunResult::from_workers(vec![worker(0, 50, 0, 0), worker(1, 50, 0, 0)], 1.0, false);
        assert!(result.worker_states_stddev().abs() < 1e-12);
    }

    #[test]
    fn stddev_positive_for_imbalanced_workers() {
        let result =
            RunResult::from_workers(vec![worker(0, 0, 0, 0), worker(1, 100, 0, 0)], 1.0, false);
        assert!((result.worker_states_stddev() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_zeroed() {
        let result = RunResult::from_workers(vec![], 0.0, false);
        assert_eq!(result.states, 0);
        assert_eq!(result.worker_states_stddev(), 0.0);
        assert_eq!(result.states_per_second(), 0.0);
    }
}

//! Tasks, task groups and steal transfers.

/// A group of sibling tasks: untried choices for one level of the search,
/// sharing the same parent path.
///
/// Task coalescing (Section 3.4 of the paper) makes the *group* the unit kept
/// in the private deque and the unit of stealing, which bounds the number of
/// steals — and therefore the number of times a partial assignment has to be
/// copied between workers.
#[derive(Clone, Debug)]
pub struct TaskGroup<C> {
    /// The level these choices belong to.
    pub depth: usize,
    /// The sibling choices (in exploration order).
    pub choices: Vec<C>,
    /// Index of the next unexecuted choice; `choices[..next]` are done.
    pub next: usize,
    /// `true` when the choices were consistency-checked at spawn time (all
    /// spawned groups); `false` only for the initial root distribution, which
    /// the paper enqueues unchecked.
    pub checked: bool,
}

impl<C: Copy> TaskGroup<C> {
    /// Creates a group over `choices` for `depth`.
    pub fn new(depth: usize, choices: Vec<C>, checked: bool) -> Self {
        TaskGroup {
            depth,
            choices,
            next: 0,
            checked,
        }
    }

    /// Number of unexecuted choices left.
    pub fn remaining(&self) -> usize {
        self.choices.len() - self.next
    }

    /// `true` when every choice has been taken.
    pub fn is_exhausted(&self) -> bool {
        self.next >= self.choices.len()
    }

    /// Takes the next choice in exploration order.
    pub fn take_next(&mut self) -> Option<C> {
        if self.is_exhausted() {
            None
        } else {
            let choice = self.choices[self.next];
            self.next += 1;
            Some(choice)
        }
    }
}

/// What travels from a victim to a thief: the stolen task group plus the
/// prefix of choices (levels `0..group.depth`) the thief must replay to
/// reconstruct the partial assignment.  This is the *only* place where
/// assignment data is copied between workers.
#[derive(Clone, Debug)]
pub struct Transfer<C> {
    /// Choices for levels `0..depth` of the stolen group.
    pub prefix: Vec<C>,
    /// The stolen group (ownership moves to the thief).
    pub group: TaskGroup<C>,
}

/// The private deque of one worker.
///
/// The owner pushes and pops at the *front* (depth-first order); steal
/// answers remove whole groups from the *back*, which by construction holds
/// the shallowest groups — the ones with the largest subtrees below them, so
/// stolen work tends to be long-running (Section 3.2).
#[derive(Debug)]
pub struct PrivateDeque<C> {
    groups: std::collections::VecDeque<TaskGroup<C>>,
}

impl<C: Copy> Default for PrivateDeque<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: Copy> PrivateDeque<C> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        PrivateDeque {
            groups: std::collections::VecDeque::new(),
        }
    }

    /// `true` when no unexecuted choice remains.
    pub fn is_empty(&self) -> bool {
        self.groups.iter().all(|g| g.is_exhausted())
    }

    /// Number of groups currently held (including a possibly partially
    /// executed front group).
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Pushes a freshly spawned group at the front.
    pub fn push_front(&mut self, group: TaskGroup<C>) {
        if !group.is_exhausted() {
            self.groups.push_front(group);
        }
    }

    /// Pushes a group at the back (initial distribution).
    pub fn push_back(&mut self, group: TaskGroup<C>) {
        if !group.is_exhausted() {
            self.groups.push_back(group);
        }
    }

    /// Takes the next task in depth-first order: the next choice of the front
    /// group, dropping exhausted groups on the way.  Returns `(depth, choice,
    /// checked)`.
    pub fn pop_task(&mut self) -> Option<(usize, C, bool)> {
        loop {
            let front = self.groups.front_mut()?;
            if let Some(choice) = front.take_next() {
                let depth = front.depth;
                let checked = front.checked;
                if front.is_exhausted() {
                    self.groups.pop_front();
                }
                return Some((depth, choice, checked));
            }
            self.groups.pop_front();
        }
    }

    /// Removes the group at the back (steal end), skipping exhausted groups.
    pub fn steal_back(&mut self) -> Option<TaskGroup<C>> {
        loop {
            let back = self.groups.pop_back()?;
            if !back.is_exhausted() {
                return Some(back);
            }
        }
    }

    /// Depth of the shallowest (stealable) group, if any.
    pub fn back_depth(&self) -> Option<usize> {
        self.groups
            .iter()
            .rev()
            .find(|g| !g.is_exhausted())
            .map(|g| g.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_group_iteration_order() {
        let mut group = TaskGroup::new(2, vec![10, 20, 30], true);
        assert_eq!(group.remaining(), 3);
        assert_eq!(group.take_next(), Some(10));
        assert_eq!(group.take_next(), Some(20));
        assert_eq!(group.remaining(), 1);
        assert!(!group.is_exhausted());
        assert_eq!(group.take_next(), Some(30));
        assert!(group.is_exhausted());
        assert_eq!(group.take_next(), None);
    }

    #[test]
    fn deque_pops_front_group_in_dfs_order() {
        let mut deque = PrivateDeque::new();
        deque.push_back(TaskGroup::new(0, vec![1, 2], false));
        deque.push_front(TaskGroup::new(1, vec![7, 8], true));
        // Front group (depth 1) is consumed before the depth-0 group.
        assert_eq!(deque.pop_task(), Some((1, 7, true)));
        assert_eq!(deque.pop_task(), Some((1, 8, true)));
        assert_eq!(deque.pop_task(), Some((0, 1, false)));
        assert_eq!(deque.pop_task(), Some((0, 2, false)));
        assert_eq!(deque.pop_task(), None);
        assert!(deque.is_empty());
    }

    #[test]
    fn steal_takes_the_shallowest_group() {
        let mut deque = PrivateDeque::new();
        deque.push_front(TaskGroup::new(0, vec![1], false));
        deque.push_front(TaskGroup::new(1, vec![2], true));
        deque.push_front(TaskGroup::new(2, vec![3], true));
        assert_eq!(deque.back_depth(), Some(0));
        let stolen = deque.steal_back().unwrap();
        assert_eq!(stolen.depth, 0);
        assert_eq!(deque.back_depth(), Some(1));
        assert_eq!(deque.len(), 2);
    }

    #[test]
    fn exhausted_groups_are_skipped() {
        let mut deque = PrivateDeque::new();
        let mut done = TaskGroup::new(3, vec![9], true);
        let _ = done.take_next();
        deque.push_front(done);
        assert!(deque.is_empty());
        assert_eq!(deque.pop_task(), None);
        assert!(deque.steal_back().is_none());
    }

    #[test]
    fn empty_group_never_enters_the_deque() {
        let mut deque: PrivateDeque<u32> = PrivateDeque::new();
        deque.push_front(TaskGroup::new(0, vec![], true));
        deque.push_back(TaskGroup::new(0, vec![], false));
        assert_eq!(deque.len(), 0);
    }
}

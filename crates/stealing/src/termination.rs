//! Dijkstra ring termination detection.
//!
//! The engine has no central scheduler and does not know the number of tasks
//! in advance, so idle workers cannot simply exit — another worker might still
//! hand them work.  The paper uses the classic Dijkstra–Feijen–van Gasteren
//! token algorithm (in the variant described by Schnitger's lecture notes):
//!
//! * workers form a ring; worker 0 initiates a **white token** when it is idle,
//! * an idle worker forwards the token to its successor; if the worker is
//!   **black** (it sent work to someone since it last forwarded the token) it
//!   colors the token black and becomes white again,
//! * when worker 0 gets a **white** token back and is itself white and idle,
//!   every worker is out of work and the computation terminates; otherwise
//!   worker 0 starts a new round.
//!
//! The detection delay is proportional to the number of workers, which is fine
//! for the ≤ 16 workers the paper (and this reproduction) targets.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Shared state of the ring-token termination detector.
#[derive(Debug)]
pub struct Termination {
    workers: usize,
    /// Which worker currently holds the token.
    token_at: AtomicUsize,
    /// Color of the token (`true` = black).
    token_black: AtomicBool,
    /// Per-worker color (`true` = black, set when the worker sends work).
    worker_black: Vec<AtomicBool>,
    /// Whether worker 0 has a round in flight.
    round_in_progress: AtomicBool,
    /// Global termination flag.
    terminated: AtomicBool,
}

impl Termination {
    /// Creates the detector for `workers` workers.
    pub fn new(workers: usize) -> Self {
        Termination {
            workers,
            token_at: AtomicUsize::new(0),
            token_black: AtomicBool::new(false),
            worker_black: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            round_in_progress: AtomicBool::new(false),
            terminated: AtomicBool::new(false),
        }
    }

    /// Marks `worker` black: it transferred work to another worker, so a round
    /// that already passed it may be stale.
    pub fn mark_black(&self, worker: usize) {
        self.worker_black[worker].store(true, Ordering::SeqCst);
    }

    /// Has global termination been detected (or forced)?
    pub fn is_terminated(&self) -> bool {
        self.terminated.load(Ordering::SeqCst)
    }

    /// Forces termination (used for global time limits and by tests).
    pub fn force(&self) {
        self.terminated.store(true, Ordering::SeqCst);
    }

    /// Called by an *idle* worker; passes the token along the ring if this
    /// worker currently holds it.  Returns `true` when global termination has
    /// been detected.
    ///
    /// With a single worker, being idle immediately means termination.
    pub fn poll_idle(&self, worker: usize) -> bool {
        if self.terminated.load(Ordering::SeqCst) {
            return true;
        }
        if self.workers == 1 {
            self.terminated.store(true, Ordering::SeqCst);
            return true;
        }
        if self.token_at.load(Ordering::SeqCst) != worker {
            return false;
        }
        if worker == 0 {
            if self.round_in_progress.load(Ordering::SeqCst) {
                // The token completed a round.
                let token_black = self.token_black.load(Ordering::SeqCst);
                let self_black = self.worker_black[0].load(Ordering::SeqCst);
                if !token_black && !self_black {
                    self.terminated.store(true, Ordering::SeqCst);
                    return true;
                }
            }
            // Start a (new) white round.
            self.round_in_progress.store(true, Ordering::SeqCst);
            self.token_black.store(false, Ordering::SeqCst);
            self.worker_black[0].store(false, Ordering::SeqCst);
            self.token_at.store(1 % self.workers, Ordering::SeqCst);
        } else {
            if self.worker_black[worker].load(Ordering::SeqCst) {
                self.token_black.store(true, Ordering::SeqCst);
                self.worker_black[worker].store(false, Ordering::SeqCst);
            }
            self.token_at
                .store((worker + 1) % self.workers, Ordering::SeqCst);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive the ring with every worker idle and no blackness: one full round
    /// plus worker 0's re-check detects termination.
    #[test]
    fn all_idle_terminates_after_one_round() {
        let term = Termination::new(4);
        // Worker 0 starts the round.
        assert!(!term.poll_idle(0));
        for w in 1..4 {
            assert!(!term.poll_idle(w));
        }
        // Token is back at worker 0, everyone stayed white.
        assert!(term.poll_idle(0));
        assert!(term.is_terminated());
    }

    #[test]
    fn black_worker_delays_termination_by_one_round() {
        let term = Termination::new(3);
        assert!(!term.poll_idle(0));
        // Worker 1 handed out work during this round.
        term.mark_black(1);
        assert!(!term.poll_idle(1));
        assert!(!term.poll_idle(2));
        // Round completed black -> no termination, new round starts.
        assert!(!term.poll_idle(0));
        assert!(!term.is_terminated());
        assert!(!term.poll_idle(1));
        assert!(!term.poll_idle(2));
        assert!(term.poll_idle(0));
        assert!(term.is_terminated());
    }

    #[test]
    fn busy_worker_stalls_the_token() {
        let term = Termination::new(3);
        assert!(!term.poll_idle(0));
        // Worker 1 never polls (it is busy); worker 2 polling does nothing
        // because it does not hold the token.
        for _ in 0..10 {
            assert!(!term.poll_idle(2));
        }
        assert!(!term.is_terminated());
        // Worker 1 finally becomes idle and forwards; then 2, then 0 detects.
        assert!(!term.poll_idle(1));
        assert!(!term.poll_idle(2));
        assert!(term.poll_idle(0));
    }

    #[test]
    fn single_worker_terminates_immediately() {
        let term = Termination::new(1);
        assert!(term.poll_idle(0));
        assert!(term.is_terminated());
    }

    #[test]
    fn force_overrides_everything() {
        let term = Termination::new(8);
        term.force();
        assert!(term.is_terminated());
        assert!(term.poll_idle(5));
    }

    #[test]
    fn worker_0_black_prevents_first_detection() {
        let term = Termination::new(2);
        assert!(!term.poll_idle(0));
        term.mark_black(0);
        assert!(!term.poll_idle(1));
        // Token returned white but worker 0 is black -> new round.
        assert!(!term.poll_idle(0));
        assert!(!term.poll_idle(1));
        assert!(term.poll_idle(0));
    }
}

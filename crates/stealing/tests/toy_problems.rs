//! Integration tests of the work-stealing engine on toy backtracking problems
//! that are independent of subgraph enumeration, so scheduler bugs are not
//! masked by matcher bugs (and vice versa):
//!
//! * **bounded counting trees** — every node of a synthetic tree with known
//!   shape is a solution prefix; the number of leaves is known in closed form,
//! * **subset-sum style assignment** — highly irregular subtree sizes, a good
//!   stress test for stealing,
//! * a **panic-free degenerate matrix** of tiny configurations.

use sge_stealing::{run, BacktrackProblem, EngineConfig};
use sge_util::SplitMix64;

/// A complete b-ary tree of the given depth: every choice is consistent, so
/// the number of solutions is exactly `branching ^ depth`.
struct CompleteTree {
    branching: u32,
    depth: usize,
}

impl BacktrackProblem for CompleteTree {
    type State = Vec<u32>;
    type Choice = u32;

    fn depth(&self) -> usize {
        self.depth
    }

    fn new_state(&self) -> Vec<u32> {
        Vec::new()
    }

    fn candidates(&self, _level: usize, _state: &Vec<u32>, out: &mut Vec<u32>) {
        out.clear();
        out.extend(0..self.branching);
    }

    fn is_consistent(&self, _level: usize, _choice: u32, _state: &Vec<u32>) -> bool {
        true
    }

    fn apply(&self, _level: usize, choice: u32, state: &mut Vec<u32>) {
        state.push(choice);
    }

    fn undo(&self, _level: usize, state: &mut Vec<u32>) {
        state.pop();
    }
}

/// Count assignments of 0/1 weights to items such that every prefix sum stays
/// below a bound — an artificially irregular search tree (left subtrees are
/// much larger than right ones).
struct BoundedPrefix {
    items: Vec<u32>,
    bound: u32,
}

impl BacktrackProblem for BoundedPrefix {
    type State = (Vec<u32>, u32); // (choices, running sum)
    type Choice = u32;

    fn depth(&self) -> usize {
        self.items.len()
    }

    fn new_state(&self) -> (Vec<u32>, u32) {
        (Vec::new(), 0)
    }

    fn candidates(&self, _level: usize, _state: &(Vec<u32>, u32), out: &mut Vec<u32>) {
        out.clear();
        out.extend([0u32, 1]);
    }

    fn is_consistent(&self, level: usize, choice: u32, state: &(Vec<u32>, u32)) -> bool {
        state.1 + choice * self.items[level] <= self.bound
    }

    fn apply(&self, level: usize, choice: u32, state: &mut (Vec<u32>, u32)) {
        state.1 += choice * self.items[level];
        state.0.push(choice);
    }

    fn undo(&self, level: usize, state: &mut (Vec<u32>, u32)) {
        let choice = state.0.pop().expect("undo without apply");
        state.1 -= choice * self.items[level];
    }
}

/// Sequential reference count for [`BoundedPrefix`].
fn bounded_prefix_reference(items: &[u32], bound: u32) -> u64 {
    fn recurse(items: &[u32], bound: u32, level: usize, sum: u32) -> u64 {
        if level == items.len() {
            return 1;
        }
        let mut total = 0;
        for choice in [0u32, 1] {
            let next = sum + choice * items[level];
            if next <= bound {
                total += recurse(items, bound, level + 1, next);
            }
        }
        total
    }
    recurse(items, bound, 0, 0)
}

#[test]
fn complete_tree_counts_are_exact() {
    for (branching, depth) in [(2u32, 10usize), (3, 7), (5, 5), (7, 4)] {
        let expected = (branching as u64).pow(depth as u32);
        for workers in [1usize, 2, 4, 8] {
            let problem = CompleteTree { branching, depth };
            let result = run(&problem, &EngineConfig::with_workers(workers));
            assert_eq!(
                result.solutions, expected,
                "b={branching} d={depth} workers={workers}"
            );
        }
    }
}

#[test]
fn irregular_tree_counts_match_reference() {
    let items: Vec<u32> = (1..=14).map(|i| (i * 3) % 11 + 1).collect();
    let bound = 24;
    let expected = bounded_prefix_reference(&items, bound);
    for workers in [1usize, 3, 6] {
        for group_size in [1usize, 4, 16] {
            let problem = BoundedPrefix {
                items: items.clone(),
                bound,
            };
            let config = EngineConfig::with_workers(workers).task_group_size(group_size);
            let result = run(&problem, &config);
            assert_eq!(
                result.solutions, expected,
                "workers={workers} group_size={group_size}"
            );
        }
    }
}

#[test]
fn degenerate_configurations_do_not_hang() {
    // Depth 1, no candidates at all, more workers than tasks, etc.
    let empty_tree = CompleteTree {
        branching: 0,
        depth: 3,
    };
    let result = run(&empty_tree, &EngineConfig::with_workers(4));
    assert_eq!(result.solutions, 0);

    let single = CompleteTree {
        branching: 1,
        depth: 1,
    };
    let result = run(&single, &EngineConfig::with_workers(8));
    assert_eq!(result.solutions, 1);

    let zero_depth = CompleteTree {
        branching: 5,
        depth: 0,
    };
    let result = run(&zero_depth, &EngineConfig::with_workers(2));
    assert_eq!(result.solutions, 1);
}

#[test]
fn per_worker_stats_sum_to_totals() {
    let problem = BoundedPrefix {
        items: (1..=12).collect(),
        bound: 30,
    };
    let result = run(&problem, &EngineConfig::with_workers(4));
    assert_eq!(
        result.workers.iter().map(|w| w.solutions).sum::<u64>(),
        result.solutions
    );
    assert_eq!(
        result.workers.iter().map(|w| w.states).sum::<u64>(),
        result.states
    );
    assert_eq!(
        result.workers.iter().map(|w| w.steals).sum::<u64>(),
        result.steals
    );
}

/// Randomized property check with deterministic seeds: the engine must agree
/// with the sequential reference for arbitrary instances and arbitrary
/// scheduler parameters.
#[test]
fn engine_matches_reference_on_random_instances() {
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(0xBEEF ^ case);
        let len = 6 + rng.next_below(8);
        let bound = 5 + rng.next_below(35) as u32;
        let workers = 1 + rng.next_below(5);
        let group_size = 1 + rng.next_below(7);
        let steal = rng.next_bool(0.5);
        let items: Vec<u32> = (0..len).map(|_| rng.next_below(9) as u32 + 1).collect();
        let expected = bounded_prefix_reference(&items, bound);
        let problem = BoundedPrefix { items, bound };
        let config = EngineConfig::with_workers(workers)
            .task_group_size(group_size)
            .steal(steal);
        let result = run(&problem, &config);
        assert_eq!(
            result.solutions, expected,
            "case={case} workers={workers} group={group_size} steal={steal}"
        );
        assert!(!result.timed_out);
    }
}

//! A fixed-capacity bitset backed by `u64` words.
//!
//! RI-DS represents the domain `D(v_p)` of every pattern node as a bitmask over
//! the target nodes.  Domains are intersected, tested for membership during the
//! search, and — for the forward-checking improvement of this paper — singleton
//! values are removed from all *other* domains.  All of these operations map to
//! word-wide logic on this type.

const WORD_BITS: usize = 64;

/// A fixed-capacity set of `usize` indices in `0..len`, stored as packed bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// Creates an empty bitset able to hold indices `0..len`.
    pub fn new(len: usize) -> Self {
        Bitset {
            words: vec![0u64; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Creates a bitset with every index in `0..len` set.
    pub fn full(len: usize) -> Self {
        let mut set = Bitset::new(len);
        for word in set.words.iter_mut() {
            *word = u64::MAX;
        }
        set.clear_tail();
        set
    }

    /// Number of indices this bitset can hold (the universe size, not the count
    /// of set bits).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Returns `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Tests whether `idx` is set.
    ///
    /// # Panics
    /// Panics if `idx >= capacity()`.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (self.words[idx / WORD_BITS] >> (idx % WORD_BITS)) & 1 == 1
    }

    /// Sets `idx`.
    #[inline]
    pub fn insert(&mut self, idx: usize) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / WORD_BITS] |= 1u64 << (idx % WORD_BITS);
    }

    /// Clears `idx`. Returns whether the bit was previously set.
    #[inline]
    pub fn remove(&mut self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let word = &mut self.words[idx / WORD_BITS];
        let mask = 1u64 << (idx % WORD_BITS);
        let was = *word & mask != 0;
        *word &= !mask;
        was
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        for word in self.words.iter_mut() {
            *word = 0;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn intersect_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// In-place difference (`self \ other`).
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn difference_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !*b;
        }
    }

    /// If exactly one bit is set, returns its index.
    pub fn singleton(&self) -> Option<usize> {
        if self.count() == 1 {
            self.iter().next()
        } else {
            None
        }
    }

    /// Iterator over the set indices in increasing order.
    pub fn iter(&self) -> BitsetIter<'_> {
        BitsetIter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Index of the lowest set bit, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// The packed `u64` words backing this set, lowest indices first.
    ///
    /// Bit `i` of word `w` corresponds to index `w * 64 + i`. Exposed so
    /// callers can AND domains directly against other word-packed rows
    /// (e.g. dense adjacency bitmaps) without going through per-bit probes.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    fn clear_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        if self.len == 0 {
            self.words.clear();
        }
    }
}

/// Iterator over set bits of a [`Bitset`].
pub struct BitsetIter<'a> {
    set: &'a Bitset,
    word_idx: usize,
    current: u64,
}

impl<'a> Iterator for BitsetIter<'a> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl FromIterator<usize> for Bitset {
    /// Builds a bitset whose capacity is one past the largest inserted index.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut set = Bitset::new(len);
        for idx in items {
            set.insert(idx);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let set = Bitset::new(100);
        assert!(set.is_empty());
        assert_eq!(set.count(), 0);
        assert_eq!(set.capacity(), 100);
        assert!(!set.contains(7));
    }

    #[test]
    fn full_sets_exactly_len_bits() {
        for len in [0usize, 1, 63, 64, 65, 100, 128, 129] {
            let set = Bitset::full(len);
            assert_eq!(set.count(), len, "len={len}");
            assert_eq!(set.iter().count(), len, "len={len}");
        }
    }

    #[test]
    fn insert_remove_contains() {
        let mut set = Bitset::new(130);
        set.insert(0);
        set.insert(64);
        set.insert(129);
        assert!(set.contains(0));
        assert!(set.contains(64));
        assert!(set.contains(129));
        assert!(!set.contains(1));
        assert_eq!(set.count(), 3);
        assert!(set.remove(64));
        assert!(!set.remove(64));
        assert!(!set.contains(64));
        assert_eq!(set.count(), 2);
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let mut set = Bitset::new(200);
        for idx in [5usize, 63, 64, 65, 199, 0] {
            set.insert(idx);
        }
        let collected: Vec<usize> = set.iter().collect();
        assert_eq!(collected, vec![0, 5, 63, 64, 65, 199]);
    }

    #[test]
    fn intersection_union_difference() {
        let mut a = Bitset::new(70);
        let mut b = Bitset::new(70);
        for idx in [1usize, 3, 5, 68] {
            a.insert(idx);
        }
        for idx in [3usize, 5, 7, 69] {
            b.insert(idx);
        }
        let mut inter = a.clone();
        inter.intersect_with(&b);
        assert_eq!(inter.iter().collect::<Vec<_>>(), vec![3, 5]);

        let mut uni = a.clone();
        uni.union_with(&b);
        assert_eq!(uni.iter().collect::<Vec<_>>(), vec![1, 3, 5, 7, 68, 69]);

        let mut diff = a.clone();
        diff.difference_with(&b);
        assert_eq!(diff.iter().collect::<Vec<_>>(), vec![1, 68]);
    }

    #[test]
    fn singleton_detection() {
        let mut set = Bitset::new(80);
        assert_eq!(set.singleton(), None);
        set.insert(77);
        assert_eq!(set.singleton(), Some(77));
        set.insert(3);
        assert_eq!(set.singleton(), None);
    }

    #[test]
    fn from_iterator_and_first() {
        let set: Bitset = [9usize, 2, 4].into_iter().collect();
        assert_eq!(set.capacity(), 10);
        assert_eq!(set.first(), Some(2));
        let empty: Bitset = std::iter::empty::<usize>().collect();
        assert_eq!(empty.first(), None);
    }

    #[test]
    fn clear_resets_everything() {
        let mut set = Bitset::full(100);
        set.clear();
        assert!(set.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn contains_out_of_range_panics() {
        let set = Bitset::new(10);
        let _ = set.contains(10);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn intersect_capacity_mismatch_panics() {
        let mut a = Bitset::new(10);
        let b = Bitset::new(11);
        a.intersect_with(&b);
    }

    #[test]
    fn zero_capacity_is_usable() {
        let set = Bitset::new(0);
        assert!(set.is_empty());
        assert_eq!(set.iter().count(), 0);
        let full = Bitset::full(0);
        assert_eq!(full.count(), 0);
    }
}

//! A shared, exact solution budget for cooperative early termination.
//!
//! Parallel schedulers must report *exactly* `min(limit, total)` solutions
//! when a match limit is set, even while many workers discover solutions
//! concurrently.  [`MatchBudget`] implements the claim protocol once so every
//! scheduler shares identical semantics: a worker calls [`MatchBudget::claim`]
//! *before* counting a solution; `true` means "count it", `false` means the
//! budget was already exhausted and the solution must be discarded.  The
//! moment the last slot is claimed the budget reports
//! [`MatchBudget::is_exhausted`], which callers use to stop their workers.
//!
//! [`CancelToken`] is the budget's external sibling: a shared flag an
//! *observer* of the run (a streaming consumer whose client disconnected, a
//! supervisor) flips to make every scheduler stop as if its budget had been
//! exhausted — cooperative, checked at the same points as the match budget.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A shared cooperative cancellation flag.
///
/// Cancellation is one-way (there is no reset) and idempotent.  Schedulers
/// poll [`CancelToken::is_cancelled`] at the same cadence as their match
/// budget / deadline checks and stop early when it fires; the run then
/// reports `cancelled = true` and its counts are lower bounds, exactly like
/// a timed-out run.
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
}

impl CancelToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation (idempotent, safe from any thread).
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// `true` once [`CancelToken::cancel`] has been called.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// Shared solution budget (see module docs).  `limit = None` never exhausts.
#[derive(Debug)]
pub struct MatchBudget {
    limit: Option<u64>,
    claimed: AtomicU64,
    exhausted: AtomicBool,
}

impl MatchBudget {
    /// A budget of `limit` solutions (`None` = unlimited).
    pub fn new(limit: Option<u64>) -> Self {
        MatchBudget {
            limit,
            claimed: AtomicU64::new(0),
            exhausted: AtomicBool::new(limit == Some(0)),
        }
    }

    /// Claims one slot.  Returns `true` when the solution should be counted;
    /// over-claims past the limit return `false` and are discarded by the
    /// caller, so the counted total is exactly `min(limit, total)`.
    #[inline]
    pub fn claim(&self) -> bool {
        let Some(limit) = self.limit else {
            return true;
        };
        let prev = self.claimed.fetch_add(1, Ordering::SeqCst);
        if prev + 1 >= limit {
            self.exhausted.store(true, Ordering::SeqCst);
        }
        prev < limit
    }

    /// `true` once every slot has been claimed (workers should stop).  Also
    /// the `limit_hit` flag reported by results.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.exhausted.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_one_way_and_idempotent() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn unlimited_budget_never_exhausts() {
        let budget = MatchBudget::new(None);
        for _ in 0..1000 {
            assert!(budget.claim());
        }
        assert!(!budget.is_exhausted());
    }

    #[test]
    fn exact_count_under_contention() {
        let budget = MatchBudget::new(Some(100));
        let counted: u64 = std::thread::scope(|scope| {
            (0..8)
                .map(|_| scope.spawn(|| (0..1000).filter(|_| budget.claim()).count() as u64))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(counted, 100);
        assert!(budget.is_exhausted());
    }

    #[test]
    fn zero_budget_is_exhausted_from_the_start() {
        let budget = MatchBudget::new(Some(0));
        assert!(budget.is_exhausted());
        assert!(!budget.claim());
    }

    #[test]
    fn exhaustion_fires_exactly_at_the_limit() {
        let budget = MatchBudget::new(Some(2));
        assert!(budget.claim());
        assert!(!budget.is_exhausted());
        assert!(budget.claim());
        assert!(budget.is_exhausted());
        assert!(!budget.claim());
    }
}

//! Time as a capability: the `Clock` abstraction.
//!
//! The serving layer used to reach for [`std::time::Instant::now`] and
//! [`std::thread::sleep`] directly, which welds wall-clock time into every
//! latency measurement and drain deadline.  That makes concurrency bugs
//! unreproducible: a failing interleaving depends on how long the OS actually
//! slept.  Threading a [`Clock`] through instead lets production code keep
//! real time ([`SystemClock`], the default everywhere) while the
//! deterministic simulator substitutes a [`VirtualClock`] whose time only
//! moves when the simulation advances it — so a seeded run observes the
//! *same* timestamps on every replay.
//!
//! Timestamps are [`Duration`]s since the clock's epoch rather than opaque
//! [`std::time::Instant`]s: an `Instant` cannot be fabricated by a virtual
//! clock, a `Duration` can.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A monotonic time source plus a way to wait.
///
/// `now` reports time elapsed since the clock's epoch (whatever "epoch"
/// means for the implementation — process start for [`SystemClock`], zero
/// for [`VirtualClock`]).  Implementations must be monotonic: `now` never
/// decreases.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Monotonic time elapsed since this clock's epoch.
    fn now(&self) -> Duration;

    /// Waits for `duration` to pass.  [`SystemClock`] blocks the calling
    /// thread; [`VirtualClock`] advances simulated time instead and returns
    /// immediately.
    fn sleep(&self, duration: Duration);
}

/// The real-time clock: `now` is time since construction, `sleep` is
/// [`std::thread::sleep`].  This is the default wherever a [`Clock`] is
/// injectable, so production behavior matches the pre-abstraction code.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, duration: Duration) {
        std::thread::sleep(duration);
    }
}

/// A simulated clock: time is a counter that moves only when somebody calls
/// [`VirtualClock::advance`] (or [`Clock::sleep`], which advances by the
/// requested amount).  Two runs that perform the same sequence of advances
/// observe bit-identical timestamps — the property the deterministic
/// simulator's same-seed/same-trace guarantee rests on.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: Mutex<Duration>,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// A clock starting at `now` past its epoch.
    pub fn starting_at(now: Duration) -> Self {
        VirtualClock {
            now: Mutex::new(now),
        }
    }

    /// Moves simulated time forward by `duration`.
    pub fn advance(&self, duration: Duration) {
        let mut now = self
            .now
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *now = now.saturating_add(duration);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        *self
            .now
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn sleep(&self, duration: Duration) {
        // Simulated sleeping costs no wall time; the sleeper just observes a
        // later timestamp afterwards.
        self.advance(duration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic_and_sleeps() {
        let clock = SystemClock::new();
        let a = clock.now();
        clock.sleep(Duration::from_millis(1));
        let b = clock.now();
        assert!(b >= a + Duration::from_millis(1));
    }

    #[test]
    fn virtual_clock_only_moves_when_advanced() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_millis(5));
        assert_eq!(clock.now(), Duration::from_millis(5));
        // Repeated reads do not drift.
        assert_eq!(clock.now(), Duration::from_millis(5));
    }

    #[test]
    fn virtual_sleep_advances_instead_of_blocking() {
        let clock = VirtualClock::starting_at(Duration::from_secs(1));
        let wall = Instant::now();
        clock.sleep(Duration::from_secs(3600));
        assert!(wall.elapsed() < Duration::from_secs(1), "sleep blocked");
        assert_eq!(clock.now(), Duration::from_secs(3601));
    }

    #[test]
    fn advance_saturates_instead_of_overflowing() {
        let clock = VirtualClock::starting_at(Duration::MAX);
        clock.advance(Duration::from_secs(1));
        assert_eq!(clock.now(), Duration::MAX);
    }

    #[test]
    fn works_through_a_trait_object() {
        let clock: std::sync::Arc<dyn Clock> = std::sync::Arc::new(VirtualClock::new());
        clock.sleep(Duration::from_millis(250));
        assert_eq!(clock.now(), Duration::from_millis(250));
    }
}

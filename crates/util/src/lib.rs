//! Utility substrate for the `sge` workspace.
//!
//! This crate bundles the small, dependency-free building blocks shared by the
//! graph substrate, the sequential RI/RI-DS matchers, the work-stealing runtime
//! and the experiment harness:
//!
//! * [`Bitset`] — a fixed-capacity bitset used for RI-DS domains (the paper
//!   stores domains as bitmasks so that forward checking can clear singleton
//!   values from every other domain with word-wide operations),
//! * [`stats`] — running mean / standard deviation / standard error and the
//!   geometric mean used throughout the paper's tables,
//! * [`timing`] — phase timers separating preprocessing from matching time,
//! * [`budget`] — the shared exact solution budget used for cooperative
//!   early termination by every parallel scheduler,
//! * [`rng`] — a tiny deterministic SplitMix64/xorshift generator for places
//!   where reproducibility matters more than statistical quality (e.g. victim
//!   selection in the work-stealing scheduler),
//! * [`clock`] — the injectable time source: [`SystemClock`] (real time, the
//!   default everywhere) and [`VirtualClock`] (simulated time for the
//!   deterministic serving-layer simulator),
//! * [`poll`] (unix only) — a raw `poll(2)` readiness primitive backing the
//!   event-driven server; the single place in the workspace where FFI is
//!   permitted.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod budget;
pub mod clock;
#[cfg(unix)]
pub mod poll;
pub mod rng;
pub mod stats;
pub mod timing;

pub use bitset::Bitset;
pub use budget::{CancelToken, MatchBudget};
pub use clock::{Clock, SystemClock, VirtualClock};
pub use rng::SplitMix64;
pub use stats::{geometric_mean, LatencyHistogram, RunningStats, SpeedupSummary};
pub use timing::PhaseTimer;

//! A minimal readiness-notification primitive over the raw `poll(2)` syscall.
//!
//! The event-driven server in `sge-service` multiplexes thousands of idle
//! connections on one thread.  With crates.io unavailable the workspace rolls
//! its own binding: a `#[repr(C)]` mirror of `struct pollfd` plus an
//! EINTR-retrying wrapper around the libc `poll` symbol (libc is already
//! linked into every Rust binary on unix, so declaring the extern symbol adds
//! no dependency).  `poll` is chosen over `epoll` deliberately — it is
//! portable across unixes, has no kernel object to leak, and rebuilding the
//! interest set from the connection table on every loop iteration is cheap at
//! the scale this server targets (hundreds to a few thousand fds).
//!
//! This is the single unsafe module in the workspace; the crate-level lint is
//! `deny(unsafe_code)` with a scoped allow here, and the unsafety is confined
//! to the FFI call itself (the slice pointer/length pair handed to the kernel
//! is derived from a live `&mut [PollEntry]`).

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;

/// Data available to read (mirror of `POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writing now will not block (mirror of `POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition (mirror of `POLLERR`; output only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (mirror of `POLLHUP`; output only).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (mirror of `POLLNVAL`; output only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the interest set — layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollEntry {
    /// The file descriptor to watch (negative entries are ignored by the
    /// kernel, which callers can use to mask out slots without reshuffling).
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT` bitmask).
    pub events: i16,
    /// Returned events; filled in by [`poll`].
    pub revents: i16,
}

impl PollEntry {
    /// An entry watching `fd` for the given interest bits.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollEntry {
            fd,
            events,
            revents: 0,
        }
    }

    /// `true` when the descriptor is readable (or has a pending hangup/error,
    /// which reads also surface).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// `true` when the descriptor is writable.
    pub fn writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }

    /// `true` when the peer hung up.
    pub fn hangup(&self) -> bool {
        self.revents & POLLHUP != 0
    }

    /// `true` on an error or invalid-fd condition.
    pub fn error(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }
}

#[cfg(target_os = "linux")]
type NfdsT = std::ffi::c_ulong;
#[cfg(not(target_os = "linux"))]
type NfdsT = std::ffi::c_uint;

extern "C" {
    fn poll(fds: *mut PollEntry, nfds: NfdsT, timeout: std::ffi::c_int) -> std::ffi::c_int;
}

/// Waits until at least one entry has a ready event, the timeout elapses, or
/// a signal arrives (EINTR is retried internally).
///
/// `timeout_ms < 0` blocks indefinitely, `0` polls without blocking.  Returns
/// the number of entries with a nonzero `revents`.
pub fn poll_entries(entries: &mut [PollEntry], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `entries` is a live, exclusively borrowed slice of
        // `#[repr(C)]` structs matching `struct pollfd`; the kernel writes
        // only to `revents` within the given length.
        let rc = unsafe { poll(entries.as_mut_ptr(), entries.len() as NfdsT, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            continue;
        }
        return Err(err);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn empty_set_times_out() {
        let ready = poll_entries(&mut [], 10).unwrap();
        assert_eq!(ready, 0);
    }

    #[test]
    fn pending_data_reports_readable() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut entries = [PollEntry::new(b.as_raw_fd(), POLLIN)];
        assert_eq!(poll_entries(&mut entries, 0).unwrap(), 0);
        assert!(!entries[0].readable());

        a.write_all(b"x").unwrap();
        let ready = poll_entries(&mut entries, 1000).unwrap();
        assert_eq!(ready, 1);
        assert!(entries[0].readable());
        assert!(!entries[0].writable());
    }

    #[test]
    fn idle_stream_reports_writable() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut entries = [PollEntry::new(a.as_raw_fd(), POLLOUT)];
        let ready = poll_entries(&mut entries, 1000).unwrap();
        assert_eq!(ready, 1);
        assert!(entries[0].writable());
    }

    #[test]
    fn closed_peer_reports_hangup_on_read_interest() {
        let (a, mut b) = UnixStream::pair().unwrap();
        drop(a);
        let mut entries = [PollEntry::new(b.as_raw_fd(), POLLIN)];
        let ready = poll_entries(&mut entries, 1000).unwrap();
        assert_eq!(ready, 1);
        assert!(entries[0].readable());
        let mut buf = [0u8; 1];
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn negative_fd_entries_are_ignored() {
        let (mut a, b) = UnixStream::pair().unwrap();
        a.write_all(b"x").unwrap();
        let mut entries = [
            PollEntry::new(-1, POLLIN),
            PollEntry::new(b.as_raw_fd(), POLLIN),
        ];
        let ready = poll_entries(&mut entries, 1000).unwrap();
        assert_eq!(ready, 1);
        assert_eq!(entries[0].revents, 0);
        assert!(entries[1].readable());
    }
}

//! A tiny deterministic pseudo-random generator.
//!
//! The work-stealing scheduler picks steal victims "from a random worker"
//! (Section 3.2 of the paper).  Statistical quality is irrelevant there, but
//! determinism per worker and zero shared state matter, so we use SplitMix64
//! rather than pulling `rand` into the hot loop of the runtime.

/// SplitMix64 generator (Steele, Lea, Flood 2014) — 64 bits of state, passes
/// BigCrush, and is trivially seedable.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.  Distinct seeds give independent-looking
    /// streams; seed 0 is fine.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    #[inline]
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for bound in [1usize, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_bool_tracks_probability() {
        let mut rng = SplitMix64::new(21);
        let hits = (0..10_000).filter(|_| rng.next_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits} hits");
        assert!(!rng.next_bool(0.0));
        assert!(rng.next_bool(1.0));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(11);
        let mut items: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        let mut rng = SplitMix64::new(0);
        rng.next_below(0);
    }
}

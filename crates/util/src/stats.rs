//! Statistics helpers mirroring the paper's reporting conventions.
//!
//! The evaluation section of the paper reports, per data collection and worker
//! count: the *arithmetic mean* speedup over total runtime (`avg`), the
//! *geometric mean* of per-instance speedups (`gmean`), the maximum speedup
//! (`max`), and standard errors of means (the red bars in its point plots).
//! [`RunningStats`] and [`SpeedupSummary`] provide exactly those quantities.

/// Online (Welford) accumulator of mean, variance, min and max.
#[derive(Clone, Debug, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance with Bessel's correction.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (sample stddev / sqrt(n)).
    pub fn stderr(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sample_variance() / self.count as f64).sqrt()
        }
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = (self.count + other.count) as f64;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total;
        self.mean = new_mean;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Geometric mean of a slice of strictly positive values.
///
/// Non-positive values are clamped to a tiny epsilon, matching the paper's
/// treatment of sub-timer-resolution measurements on very short instances.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// The `avg` / `gmean` / `max` triple reported by Tables 2 and 3 of the paper.
///
/// * `avg` is the ratio of summed baseline time to summed variant time — i.e.
///   the speedup of the *total* runtime over the instance group,
/// * `gmean` is the geometric mean of per-instance speedups,
/// * `max` is the best per-instance speedup.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpeedupSummary {
    /// Speedup of total (summed) runtime.
    pub avg: f64,
    /// Geometric mean of per-instance speedups.
    pub gmean: f64,
    /// Maximum per-instance speedup.
    pub max: f64,
    /// Number of instances in the group.
    pub instances: usize,
}

impl SpeedupSummary {
    /// Builds the summary from per-instance `(baseline_time, variant_time)` pairs.
    ///
    /// Times are in seconds; pairs where the variant time is zero are clamped to
    /// a nanosecond to avoid infinities (the paper marks such entries with `*`).
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Self {
        if pairs.is_empty() {
            return SpeedupSummary::default();
        }
        let base_total: f64 = pairs.iter().map(|p| p.0).sum();
        let var_total: f64 = pairs.iter().map(|p| p.1.max(1e-9)).sum();
        let per_instance: Vec<f64> = pairs.iter().map(|p| p.0 / p.1.max(1e-9)).collect();
        let max = per_instance
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        SpeedupSummary {
            avg: base_total / var_total,
            gmean: geometric_mean(&per_instance),
            max,
            instances: pairs.len(),
        }
    }
}

/// A log-scaled latency histogram with quantile estimation.
///
/// Buckets are powers of two over microseconds: bucket `i` covers latencies
/// in `[2^(i-1), 2^i)` µs (bucket 0 is `< 1` µs), topping out at ~73 minutes
/// in the final catch-all bucket.  Recording is O(1) and lock-friendly (the
/// struct is plain data; callers wrap it in whatever synchronization they
/// use), quantiles are resolved to the upper edge of the owning bucket —
/// the usual fidelity for service latency reporting, where the bucket
/// resolution (a factor of two) is far below the run-to-run noise.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; LatencyHistogram::NUM_BUCKETS],
    count: u64,
    sum_seconds: f64,
    max_seconds: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// 33 buckets: `< 1 µs`, 31 doubling buckets, and a catch-all.
    pub const NUM_BUCKETS: usize = 33;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; Self::NUM_BUCKETS],
            count: 0,
            sum_seconds: 0.0,
            max_seconds: 0.0,
        }
    }

    fn bucket_of(seconds: f64) -> usize {
        // Clamp the bottom end explicitly: 0 ns, sub-microsecond samples and
        // any non-positive/NaN input all belong to bucket 0 — never let a
        // negative `log2()` reach the `as usize` cast.
        if seconds.is_nan() || seconds <= 0.0 {
            return 0;
        }
        let micros = seconds * 1e6;
        if micros < 1.0 {
            return 0;
        }
        // Bucket i (i >= 1) covers [2^(i-1), 2^i) µs.  Clamp the exponent
        // *before* converting and adding 1, so huge durations (Duration::MAX,
        // +inf) land in the catch-all bucket instead of overflowing past
        // NUM_BUCKETS.
        let exponent = micros.log2().floor();
        if exponent >= (Self::NUM_BUCKETS - 2) as f64 {
            return Self::NUM_BUCKETS - 1;
        }
        exponent as usize + 1
    }

    /// Upper edge of bucket `i` in seconds.
    fn bucket_upper_seconds(bucket: usize) -> f64 {
        // Bucket 0 tops at 1 µs; bucket i at 2^i µs.
        (1u64 << bucket) as f64 * 1e-6
    }

    /// Records one latency observation (negative values clamp to 0).
    pub fn record(&mut self, seconds: f64) {
        let seconds = seconds.max(0.0);
        self.buckets[Self::bucket_of(seconds)] += 1;
        self.count += 1;
        self.sum_seconds += seconds;
        self.max_seconds = self.max_seconds.max(seconds);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in seconds (0 when empty).
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_seconds / self.count as f64
        }
    }

    /// Maximum recorded latency in seconds.
    pub fn max_seconds(&self) -> f64 {
        self.max_seconds
    }

    /// The latency below which a `q` fraction of observations fall,
    /// resolved to the upper edge of the owning bucket (`None` when empty).
    /// `q` is clamped to `[0, 1]`.
    pub fn quantile_seconds(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                if bucket == Self::NUM_BUCKETS - 1 {
                    // The catch-all bucket has no finite edge; the exact max
                    // is the tightest bound we track.
                    return Some(self.max_seconds);
                }
                // The exact max is a tighter bound than the edge of the top
                // occupied bucket.
                return Some(Self::bucket_upper_seconds(bucket).min(self.max_seconds));
            }
        }
        Some(self.max_seconds)
    }

    /// Merges another histogram into this one (parallel reduction).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_seconds += other.sum_seconds;
        self.max_seconds = self.max_seconds.max(other.max_seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn empty_stats_are_zeroed() {
        let stats = RunningStats::new();
        assert_eq!(stats.count(), 0);
        assert_eq!(stats.mean(), 0.0);
        assert_eq!(stats.stddev(), 0.0);
        assert_eq!(stats.stderr(), 0.0);
        assert_eq!(stats.min(), None);
        assert_eq!(stats.max(), None);
    }

    #[test]
    fn mean_and_variance_match_direct_formula() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut stats = RunningStats::new();
        for v in values {
            stats.push(v);
        }
        assert_close(stats.mean(), 5.0);
        assert_close(stats.variance(), 4.0);
        assert_close(stats.stddev(), 2.0);
        assert_close(stats.sum(), 40.0);
        assert_eq!(stats.min(), Some(2.0));
        assert_eq!(stats.max(), Some(9.0));
    }

    #[test]
    fn merge_equals_single_pass() {
        let values: Vec<f64> = (1..=100).map(|x| (x as f64).sqrt()).collect();
        let mut all = RunningStats::new();
        for &v in &values {
            all.push(v);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for (i, &v) in values.iter().enumerate() {
            if i % 3 == 0 {
                left.push(v);
            } else {
                right.push(v);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert_close(left.mean(), all.mean());
        assert_close(left.variance(), all.variance());
        assert_close(left.min().unwrap(), all.min().unwrap());
        assert_close(left.max().unwrap(), all.max().unwrap());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_close(a.mean(), before.mean());

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_close(empty.mean(), before.mean());
        assert_eq!(empty.count(), before.count());
    }

    #[test]
    fn geometric_mean_basic() {
        assert_close(geometric_mean(&[1.0, 4.0]), 2.0);
        assert_close(geometric_mean(&[2.0, 2.0, 2.0]), 2.0);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn geometric_mean_clamps_non_positive() {
        let value = geometric_mean(&[0.0, 1.0]);
        assert!(value > 0.0 && value < 1.0);
    }

    #[test]
    fn speedup_summary_matches_paper_semantics() {
        // Two instances: baseline 10s and 1s, variant 2s and 1s.
        let pairs = [(10.0, 2.0), (1.0, 1.0)];
        let summary = SpeedupSummary::from_pairs(&pairs);
        assert_close(summary.avg, 11.0 / 3.0);
        assert_close(summary.gmean, (5.0f64 * 1.0).sqrt());
        assert_close(summary.max, 5.0);
        assert_eq!(summary.instances, 2);
    }

    #[test]
    fn speedup_summary_empty() {
        let summary = SpeedupSummary::from_pairs(&[]);
        assert_eq!(summary.instances, 0);
        assert_eq!(summary.avg, 0.0);
    }

    #[test]
    fn latency_histogram_buckets_and_quantiles() {
        let mut hist = LatencyHistogram::new();
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.quantile_seconds(0.5), None);

        // 90 fast observations around 100 µs, 10 slow around 50 ms.
        for _ in 0..90 {
            hist.record(100e-6);
        }
        for _ in 0..10 {
            hist.record(50e-3);
        }
        assert_eq!(hist.count(), 100);
        let p50 = hist.quantile_seconds(0.5).unwrap();
        let p99 = hist.quantile_seconds(0.99).unwrap();
        // p50 lands in the 100 µs bucket ([64, 128) µs); p99 in the 50 ms
        // bucket ([32.8, 65.5) ms).
        assert!((100e-6..256e-6).contains(&p50), "p50 = {p50}");
        assert!((50e-3..100e-3).contains(&p99), "p99 = {p99}");
        assert!(hist.quantile_seconds(1.0).unwrap() <= hist.max_seconds());
        assert_close(hist.max_seconds(), 50e-3);
        assert!((hist.mean_seconds() - (90.0 * 100e-6 + 10.0 * 50e-3) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn latency_histogram_merge_equals_single_pass() {
        let mut all = LatencyHistogram::new();
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        for i in 0..1000 {
            let v = (i as f64) * 17e-6;
            all.record(v);
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert_close(left.mean_seconds(), all.mean_seconds());
        assert_close(left.max_seconds(), all.max_seconds());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_close(
                left.quantile_seconds(q).unwrap(),
                all.quantile_seconds(q).unwrap(),
            );
        }
    }

    #[test]
    fn latency_histogram_bucket_boundaries() {
        // Bottom end: 0 ns and every sub-microsecond sample land in bucket 0.
        assert_eq!(LatencyHistogram::bucket_of(0.0), 0);
        assert_eq!(LatencyHistogram::bucket_of(999e-9), 0);
        assert_eq!(LatencyHistogram::bucket_of(-3.0), 0);
        assert_eq!(LatencyHistogram::bucket_of(f64::NAN), 0);
        assert_eq!(LatencyHistogram::bucket_of(f64::MIN_POSITIVE), 0);
        // 1 µs is the first doubling bucket.
        assert_eq!(LatencyHistogram::bucket_of(1e-6), 1);
        assert_eq!(LatencyHistogram::bucket_of(1.9e-6), 1);
        assert_eq!(LatencyHistogram::bucket_of(2e-6), 2);
        // Top end: Duration::MAX-ish and infinite samples clamp to the
        // catch-all bucket instead of indexing past NUM_BUCKETS.
        let top = LatencyHistogram::NUM_BUCKETS - 1;
        assert_eq!(
            LatencyHistogram::bucket_of(std::time::Duration::MAX.as_secs_f64()),
            top
        );
        assert_eq!(LatencyHistogram::bucket_of(f64::MAX), top);
        assert_eq!(LatencyHistogram::bucket_of(f64::INFINITY), top);
        // The largest finite bucket sits just below the catch-all.
        assert_eq!(LatencyHistogram::bucket_of(2.0f64.powi(30) * 1e-6), top - 1);
        assert_eq!(LatencyHistogram::bucket_of(2.0f64.powi(31) * 1e-6), top);
    }

    #[test]
    fn latency_histogram_records_extreme_samples() {
        let mut hist = LatencyHistogram::new();
        hist.record(0.0);
        hist.record(999e-9);
        hist.record(std::time::Duration::MAX.as_secs_f64());
        hist.record(f64::INFINITY);
        assert_eq!(hist.count(), 4);
        // Quantiles stay well-defined: the low half resolves to the first
        // bucket edge, the top to the recorded maximum.
        assert!(hist.quantile_seconds(0.25).unwrap() <= 1e-6);
        assert_eq!(hist.quantile_seconds(1.0).unwrap(), f64::INFINITY);
        let mut other = LatencyHistogram::new();
        other.record(1e-3);
        other.merge(&hist);
        assert_eq!(other.count(), 5);
    }

    #[test]
    fn latency_histogram_edge_cases() {
        let mut hist = LatencyHistogram::new();
        hist.record(-1.0); // clamps to 0
        hist.record(0.0);
        hist.record(1e9); // lands in the catch-all bucket
        assert_eq!(hist.count(), 3);
        assert!(hist.quantile_seconds(0.01).unwrap() <= 1e-6);
        assert_close(hist.quantile_seconds(1.0).unwrap(), 1e9);
    }

    #[test]
    fn stderr_decreases_with_sample_size() {
        let mut small = RunningStats::new();
        let mut large = RunningStats::new();
        for i in 0..10 {
            small.push((i % 5) as f64);
        }
        for i in 0..1000 {
            large.push((i % 5) as f64);
        }
        assert!(large.stderr() < small.stderr());
    }
}

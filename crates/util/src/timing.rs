//! Phase timers.
//!
//! The paper separates *preprocessing time* (domain assignment + node ordering)
//! from *matching time* (the search itself) and reports *total time* as their
//! sum (Fig. 9).  [`PhaseTimer`] accumulates named phases so the experiment
//! harness can report the same breakdown.

use std::time::{Duration, Instant};

/// Accumulates wall-clock durations for a fixed small set of named phases.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimer {
    phases: Vec<(String, f64)>,
}

impl PhaseTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        PhaseTimer { phases: Vec::new() }
    }

    /// Runs `f`, recording its duration under `phase`, and returns its result.
    pub fn time<T>(&mut self, phase: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed());
        out
    }

    /// Adds a measured duration to `phase`.
    pub fn add(&mut self, phase: &str, duration: Duration) {
        self.add_seconds(phase, duration.as_secs_f64());
    }

    /// Adds raw seconds to `phase`.
    pub fn add_seconds(&mut self, phase: &str, seconds: f64) {
        if let Some(entry) = self.phases.iter_mut().find(|(name, _)| name == phase) {
            entry.1 += seconds;
        } else {
            self.phases.push((phase.to_string(), seconds));
        }
    }

    /// Accumulated seconds for `phase` (0.0 if never recorded).
    pub fn seconds(&self, phase: &str) -> f64 {
        self.phases
            .iter()
            .find(|(name, _)| name == phase)
            .map_or(0.0, |(_, secs)| *secs)
    }

    /// Sum of all phases.
    pub fn total(&self) -> f64 {
        self.phases.iter().map(|(_, secs)| secs).sum()
    }

    /// Iterates over `(phase, seconds)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.phases
            .iter()
            .map(|(name, secs)| (name.as_str(), *secs))
    }

    /// Merges another timer into this one.
    pub fn merge(&mut self, other: &PhaseTimer) {
        for (phase, secs) in other.iter() {
            self.add_seconds(phase, secs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_named_phases() {
        let mut timer = PhaseTimer::new();
        timer.add_seconds("preprocess", 0.5);
        timer.add_seconds("match", 2.0);
        timer.add_seconds("preprocess", 0.25);
        assert!((timer.seconds("preprocess") - 0.75).abs() < 1e-12);
        assert!((timer.seconds("match") - 2.0).abs() < 1e-12);
        assert!((timer.total() - 2.75).abs() < 1e-12);
        assert_eq!(timer.seconds("unknown"), 0.0);
    }

    #[test]
    fn time_closure_records_positive_duration() {
        let mut timer = PhaseTimer::new();
        let value = timer.time("work", || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(value > 0);
        assert!(timer.seconds("work") >= 0.0);
        assert_eq!(timer.iter().count(), 1);
    }

    #[test]
    fn merge_sums_by_phase() {
        let mut a = PhaseTimer::new();
        a.add_seconds("x", 1.0);
        let mut b = PhaseTimer::new();
        b.add_seconds("x", 2.0);
        b.add_seconds("y", 3.0);
        a.merge(&b);
        assert!((a.seconds("x") - 3.0).abs() < 1e-12);
        assert!((a.seconds("y") - 3.0).abs() < 1e-12);
    }
}

//! A VF2-style baseline subgraph enumerator.
//!
//! VF2 (Cordella et al., 2004) is the classic state-space subgraph isomorphism
//! algorithm with a *dynamic* variable ordering: at every state it picks the
//! next pattern node based on the frontier of the partial mapping.  The paper
//! discusses VF2 (and VF2 Plus) as the main alternatives to RI; we implement a
//! compact VF2-flavoured enumerator to serve two purposes:
//!
//! * an **independent correctness oracle** — RI, RI-DS and the parallel
//!   variants are cross-validated against it on randomized instances, and
//! * a **baseline** for the ablation benches (static vs dynamic ordering).
//!
//! Semantics match the rest of the workspace: non-induced, label-equality
//! compatibility for nodes and edges, directed graphs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sge_graph::{Graph, NodeId};

/// Result of a VF2 enumeration run.
#[derive(Clone, Debug, Default)]
pub struct Vf2Result {
    /// Number of non-induced isomorphic embeddings found.
    pub matches: u64,
    /// Number of candidate pairs for which the feasibility check ran.
    pub states: u64,
}

struct Vf2<'a> {
    pattern: &'a Graph,
    target: &'a Graph,
    /// pattern node -> target node (MAX = unmapped)
    core_p: Vec<NodeId>,
    /// target node -> pattern node (MAX = unmapped)
    core_t: Vec<NodeId>,
    depth: usize,
    result: Vf2Result,
    limit: Option<u64>,
}

impl<'a> Vf2<'a> {
    fn new(pattern: &'a Graph, target: &'a Graph, limit: Option<u64>) -> Self {
        Vf2 {
            pattern,
            target,
            core_p: vec![NodeId::MAX; pattern.num_nodes()],
            core_t: vec![NodeId::MAX; target.num_nodes()],
            depth: 0,
            result: Vf2Result::default(),
            limit,
        }
    }

    fn done(&self) -> bool {
        self.limit.is_some_and(|l| self.result.matches >= l)
    }

    /// Dynamic variable selection: prefer an unmapped pattern node adjacent to
    /// the mapped region (the "frontier"), falling back to the smallest
    /// unmapped id for disconnected patterns.
    ///
    /// Runs at every search state, so the frontier test scans the two CSR
    /// adjacency slices directly instead of materializing an undirected
    /// neighborhood per call.
    fn select_next(&self) -> Option<NodeId> {
        let mut fallback = None;
        for vp in 0..self.pattern.num_nodes() as NodeId {
            if self.core_p[vp as usize] != NodeId::MAX {
                continue;
            }
            if fallback.is_none() {
                fallback = Some(vp);
            }
            let mapped = |e: &sge_graph::EdgeRef| self.core_p[e.node as usize] != NodeId::MAX;
            let frontier = self.pattern.out_edges(vp).iter().any(mapped)
                || self.pattern.in_edges(vp).iter().any(mapped);
            if frontier {
                return Some(vp);
            }
        }
        fallback
    }

    /// Candidate target nodes for `vp`: if some mapped pattern neighbor exists,
    /// use the appropriate adjacency list of its image; otherwise all unmapped
    /// target nodes.
    fn candidates(&self, vp: NodeId) -> Vec<NodeId> {
        for e in self.pattern.in_edges(vp) {
            let wp = e.node;
            let wt = self.core_p[wp as usize];
            if wp != vp && wt != NodeId::MAX {
                return self.target.out_edges(wt).iter().map(|te| te.node).collect();
            }
        }
        for e in self.pattern.out_edges(vp) {
            let wp = e.node;
            let wt = self.core_p[wp as usize];
            if wp != vp && wt != NodeId::MAX {
                return self.target.in_edges(wt).iter().map(|te| te.node).collect();
            }
        }
        (0..self.target.num_nodes() as NodeId)
            .filter(|&vt| self.core_t[vt as usize] == NodeId::MAX)
            .collect()
    }

    fn feasible(&self, vp: NodeId, vt: NodeId) -> bool {
        if self.core_t[vt as usize] != NodeId::MAX {
            return false;
        }
        if self.pattern.label(vp) != self.target.label(vt) {
            return false;
        }
        if self.target.out_degree(vt) < self.pattern.out_degree(vp)
            || self.target.in_degree(vt) < self.pattern.in_degree(vp)
        {
            return false;
        }
        for e in self.pattern.out_edges(vp) {
            let wp = e.node;
            if wp == vp {
                match self.target.edge_label(vt, vt) {
                    Some(l) if l == e.label => {}
                    _ => return false,
                }
                continue;
            }
            let wt = self.core_p[wp as usize];
            if wt != NodeId::MAX {
                match self.target.edge_label(vt, wt) {
                    Some(l) if l == e.label => {}
                    _ => return false,
                }
            }
        }
        for e in self.pattern.in_edges(vp) {
            let wp = e.node;
            if wp == vp {
                continue;
            }
            let wt = self.core_p[wp as usize];
            if wt != NodeId::MAX {
                match self.target.edge_label(wt, vt) {
                    Some(l) if l == e.label => {}
                    _ => return false,
                }
            }
        }
        true
    }

    fn search(&mut self) {
        if self.done() {
            return;
        }
        if self.depth == self.pattern.num_nodes() {
            self.result.matches += 1;
            return;
        }
        let Some(vp) = self.select_next() else {
            return;
        };
        for vt in self.candidates(vp) {
            if self.done() {
                return;
            }
            self.result.states += 1;
            if !self.feasible(vp, vt) {
                continue;
            }
            self.core_p[vp as usize] = vt;
            self.core_t[vt as usize] = vp;
            self.depth += 1;
            self.search();
            self.depth -= 1;
            self.core_p[vp as usize] = NodeId::MAX;
            self.core_t[vt as usize] = NodeId::MAX;
        }
    }
}

/// Enumerates all non-induced embeddings of `pattern` in `target`.
///
/// An empty pattern has exactly one (empty) embedding, mirroring
/// `sge_ri::enumerate`.
pub fn enumerate(pattern: &Graph, target: &Graph) -> Vf2Result {
    enumerate_limited(pattern, target, None)
}

/// Like [`enumerate`] but stops after `limit` matches when `limit` is `Some`.
pub fn enumerate_limited(pattern: &Graph, target: &Graph, limit: Option<u64>) -> Vf2Result {
    if pattern.num_nodes() == 0 {
        return Vf2Result {
            matches: 1,
            states: 0,
        };
    }
    if pattern.num_nodes() > target.num_nodes() {
        return Vf2Result::default();
    }
    let mut vf2 = Vf2::new(pattern, target, limit);
    vf2.search();
    vf2.result
}

/// Convenience helper returning just the match count.
pub fn count_matches(pattern: &Graph, target: &Graph) -> u64 {
    enumerate(pattern, target).matches
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_graph::{generators, GraphBuilder};

    #[test]
    fn directed_edge_in_clique() {
        let pattern = generators::directed_path(2, 0);
        let target = generators::clique(4, 0);
        assert_eq!(count_matches(&pattern, &target), 12);
    }

    #[test]
    fn triangle_in_clique() {
        let pattern = generators::directed_cycle(3, 0);
        let target = generators::clique(4, 0);
        assert_eq!(count_matches(&pattern, &target), 24);
    }

    #[test]
    fn path_in_path() {
        let pattern = generators::directed_path(3, 0);
        let target = generators::directed_path(6, 0);
        assert_eq!(count_matches(&pattern, &target), 4);
    }

    #[test]
    fn labels_respected() {
        let pattern = generators::labeled_triangle(1, 2, 3);
        let target = generators::labeled_triangle(1, 2, 3);
        assert_eq!(count_matches(&pattern, &target), 1);
        let wrong = generators::labeled_triangle(1, 2, 2);
        assert_eq!(count_matches(&pattern, &wrong), 0);
    }

    #[test]
    fn empty_pattern_single_embedding() {
        let pattern = GraphBuilder::new().build();
        let target = generators::clique(3, 0);
        assert_eq!(count_matches(&pattern, &target), 1);
    }

    #[test]
    fn oversized_pattern_has_no_embedding() {
        let pattern = generators::clique(5, 0);
        let target = generators::clique(4, 0);
        assert_eq!(count_matches(&pattern, &target), 0);
    }

    #[test]
    fn disconnected_pattern() {
        let mut pb = GraphBuilder::new();
        pb.add_nodes(2, 0);
        let pattern = pb.build();
        let mut tb = GraphBuilder::new();
        tb.add_nodes(4, 0);
        let target = tb.build();
        assert_eq!(count_matches(&pattern, &target), 12);
    }

    #[test]
    fn self_loops_handled() {
        let mut pb = GraphBuilder::new();
        let p = pb.add_node(0);
        pb.add_edge(p, p, 0);
        let pattern = pb.build();
        let mut tb = GraphBuilder::new();
        let t0 = tb.add_node(0);
        let _t1 = tb.add_node(0);
        tb.add_edge(t0, t0, 0);
        let target = tb.build();
        assert_eq!(count_matches(&pattern, &target), 1);
    }

    #[test]
    fn limited_enumeration_stops_early() {
        let pattern = generators::directed_path(2, 0);
        let target = generators::clique(8, 0);
        let result = enumerate_limited(&pattern, &target, Some(3));
        assert_eq!(result.matches, 3);
        assert!(result.states < 8 * 7);
    }

    #[test]
    fn grid_squares() {
        // 4-cycles in a 3x3 grid are exactly the 4 unit squares; each hosts
        // |Aut(C4)| = 8 embeddings (4 rotations x 2 directions).
        let pattern = generators::undirected_cycle(4, 0);
        let target = generators::grid(3, 3);
        assert_eq!(count_matches(&pattern, &target), 32);
    }
}

//! A hand-rolled JSON encoder (the build environment has no serde).
//!
//! Only what the wire protocol needs: objects with insertion-ordered keys,
//! arrays, strings with full escaping, integers, finite floats, booleans and
//! null.  Rendering is single-line — one response per line is the protocol's
//! framing.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (match counts, state counts, hashes).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float; non-finite values render as `null` (JSON has no NaN).
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(key, value)| (key.to_string(), value))
                .collect(),
        )
    }

    /// Builds a string value.
    pub fn str(text: impl Into<String>) -> Json {
        Json::Str(text.into())
    }

    /// Renders to a single-line JSON string.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

fn escape_into(out: &mut fmt::Formatter<'_>, text: &str) -> fmt::Result {
    out.write_str("\"")?;
    for c in text.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(n) => write!(f, "{n}"),
            Json::I64(n) => write!(f, "{n}"),
            Json::F64(x) => {
                if x.is_finite() {
                    // `{:?}` guarantees a distinguishing decimal point or
                    // exponent, keeping the value a JSON number, not an int.
                    write!(f, "{x:?}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => escape_into(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(42).render(), "42");
        assert_eq!(Json::I64(-7).render(), "-7");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(2.0).render(), "2.0");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::str("plain").render(), "\"plain\"");
        assert_eq!(
            Json::str("a\"b\\c\nd\te\r").render(),
            "\"a\\\"b\\\\c\\nd\\te\\r\""
        );
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
        assert_eq!(Json::str("héllo ☂").render(), "\"héllo ☂\"");
    }

    #[test]
    fn containers_render_in_order() {
        let value = Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("items", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            ("nested", Json::obj(vec![("k", Json::Null)])),
        ]);
        assert_eq!(
            value.render(),
            "{\"ok\":true,\"items\":[1,2],\"nested\":{\"k\":null}}"
        );
    }

    #[test]
    fn single_line_output() {
        let value = Json::obj(vec![("text", Json::str("line1\nline2"))]);
        assert!(!value.render().contains('\n'));
    }
}

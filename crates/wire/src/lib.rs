//! The wire plane of the serving stack.
//!
//! This crate owns everything that crosses a connection boundary and nothing
//! that executes on one side of it: the newline-delimited request grammar and
//! its parser ([`protocol`]), the hand-rolled single-line JSON encoder
//! ([`json`]), the response/frame builders, and the shared vocabulary types —
//! [`QuerySpec`], [`QueryOutcome`], [`StreamHeader`], [`StreamSink`],
//! [`ServiceError`] — that the server, the client, the scatter-gather
//! coordinator and the deterministic simulator all speak.
//!
//! Splitting this out of `sge-service` means shard-internal RPC and the
//! public client protocol share one tested codec: the coordinator re-parses
//! nothing and re-encodes through exactly the functions the single-process
//! server uses.
//!
//! Everything is `std`-only: no async runtime, no serialization crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod protocol;

use sge_engine::{EnumerationOutcome, PreparedEngine, RunConfig, Scheduler};
use sge_graph::io::ParseError;
use sge_graph::NodeId;
use sge_obs::SpanRecord;
use sge_plan::RoutingDecision;
use sge_ri::{Algorithm, CandidateMode};
use std::fmt;
use std::sync::Arc;

/// Default number of rows per streamed frame (`chunk=` on the wire).
pub const DEFAULT_STREAM_CHUNK: usize = 64;

/// Upper bound on `chunk=`: larger requests are clamped, keeping server
/// memory O(chunk) with a sane constant.
pub const MAX_STREAM_CHUNK: usize = 65_536;

/// Errors produced by the serving layer.
#[derive(Debug)]
pub enum ServiceError {
    /// The named target graph is not loaded in the registry.
    UnknownTarget(String),
    /// A graph (target file or query pattern) failed to parse.
    Parse(ParseError),
    /// A malformed protocol request.
    Protocol(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownTarget(name) => write!(f, "unknown target '{name}'"),
            ServiceError::Parse(err) => write!(f, "graph parse error: {err}"),
            ServiceError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServiceError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ParseError> for ServiceError {
    fn from(err: ParseError) -> Self {
        ServiceError::Parse(err)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(err: std::io::Error) -> Self {
        ServiceError::Io(err)
    }
}

/// What a `LOAD` registered: the target's shape and its bitmap sidecar's
/// footprint, as reported in the LOAD response.
#[derive(Clone, Debug)]
pub struct GraphInfo {
    /// Registry name the graph was loaded under.
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Rows the adjacency-bitmap sidecar materialized (0 when capped out).
    pub bitmap_rows: usize,
    /// Bytes the sidecar occupies.
    pub bitmap_bytes: usize,
    /// Whether the sidecar hit its byte cap and fell back to CSR-only
    /// kernels.
    pub bitmap_capped: bool,
}

/// How query results leave the service.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EmitMode {
    /// One buffered JSON response; mappings (if collected) ride along in a
    /// single `mappings` array.  The pre-streaming behavior.
    #[default]
    Buffered,
    /// A header line, then newline-delimited row frames of up to `chunk`
    /// mappings each, then a footer line with the outcome — server memory is
    /// O(chunk), independent of the result cardinality.
    Stream,
}

impl fmt::Display for EmitMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EmitMode::Buffered => "buffered",
            EmitMode::Stream => "stream",
        })
    }
}

impl std::str::FromStr for EmitMode {
    type Err = String;

    /// Parses `buffered` / `stream` (case-insensitive).
    fn from_str(text: &str) -> Result<Self, Self::Err> {
        match text.to_ascii_lowercase().as_str() {
            "buffered" => Ok(EmitMode::Buffered),
            "stream" => Ok(EmitMode::Stream),
            other => Err(format!(
                "unknown emit mode '{other}' (expected buffered or stream)"
            )),
        }
    }
}

/// One query: a pattern (as `.gfu`/`.gfd` text) to enumerate with a given
/// algorithm and run configuration against a registry target.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// Pattern graph in the text exchange format.
    pub pattern_text: String,
    /// Algorithm variant to prepare (part of the cache key).
    pub algorithm: Algorithm,
    /// Candidate generation scheme to prepare under (part of the cache
    /// key; intersection by default).
    pub mode: CandidateMode,
    /// Scheduler and limits for this run.  The embedded
    /// `RunConfig::strategy` selects the ordering strategy the engine is
    /// prepared with (also part of the cache key).
    pub run: RunConfig,
    /// How results leave the service (buffered response vs. row stream).
    /// Not part of the cache key: the same prepared engine serves both.
    pub emit: EmitMode,
    /// Rows per streamed frame (clamped to `1..=`[`MAX_STREAM_CHUNK`]);
    /// ignored in buffered mode.
    pub chunk: usize,
    /// Whether the caller pinned the scheduler.  When `false` (the default)
    /// the service routes the run through [`sge_plan::Planner::route`],
    /// replacing `run.scheduler` with the planner's choice; when `true` the
    /// embedded scheduler is honored verbatim (`sched=` on the wire, or
    /// [`QuerySpec::with_run`] in-process).
    pub pinned: bool,
}

impl QuerySpec {
    /// A query with the given pattern text, the paper's strongest variant
    /// (RI-DS-SI-FC) and an unlimited, buffered, planner-routed run.
    pub fn new(pattern_text: impl Into<String>) -> Self {
        QuerySpec {
            pattern_text: pattern_text.into(),
            algorithm: Algorithm::RiDsSiFc,
            mode: CandidateMode::default(),
            run: RunConfig::default(),
            emit: EmitMode::default(),
            chunk: DEFAULT_STREAM_CHUNK,
            pinned: false,
        }
    }

    /// Sets the algorithm.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the candidate generation scheme.
    pub fn with_mode(mut self, mode: CandidateMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the run configuration and pins its scheduler (a caller that
    /// passes an explicit [`RunConfig`] expects its scheduler to be the one
    /// that runs).  Chain [`QuerySpec::routed`] to keep the limits but let
    /// the planner pick the scheduler.
    pub fn with_run(mut self, run: RunConfig) -> Self {
        self.run = run;
        self.pinned = true;
        self
    }

    /// Un-pins the scheduler: the embedded `run`'s limits stay, but the
    /// planner routes the scheduler choice.
    pub fn routed(mut self) -> Self {
        self.pinned = false;
        self
    }

    /// Switches to streaming emission with `chunk` rows per frame.
    pub fn with_streaming(mut self, chunk: usize) -> Self {
        self.emit = EmitMode::Stream;
        self.chunk = chunk;
        self
    }
}

/// The result of one served query.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// Name of the target the query ran against.
    pub target: String,
    /// Stable-within-process hash of the canonical pattern (reported so
    /// clients can correlate cache behavior).
    pub pattern_hash: u64,
    /// Whether the prepared engine came out of the prepared cache.
    pub cache_hit: bool,
    /// End-to-end service latency of this query in seconds (parse + cache
    /// lookup / preparation + run).
    pub latency_seconds: f64,
    /// Whether the scheduler was chosen by [`sge_plan::Planner::route`]
    /// (`true`) or pinned by the caller (`false`).
    pub routed: bool,
    /// The enumeration result.
    pub outcome: EnumerationOutcome,
}

/// The result of an `EXPLAIN`: the prepared engine whose plan is reported.
#[derive(Clone)]
pub struct ExplainOutcome {
    /// Name of the target the plan was built against.
    pub target: String,
    /// Stable-within-process hash of the canonical pattern.
    pub pattern_hash: u64,
    /// Whether the plan came out of the prepared cache.
    pub cache_hit: bool,
    /// End-to-end service latency of the explain in seconds.
    pub latency_seconds: f64,
    /// The routing decision current when the explain ran (what an
    /// unpinned QUERY of the same spec would dispatch as right now).
    pub routing: RoutingDecision,
    /// Whether the explained query would be planner-routed (`true`) or ran
    /// with a caller-pinned scheduler (`false`).
    pub routed: bool,
    /// The scheduler the explained query would execute under: the routed
    /// choice, or the pinned one.
    pub effective_scheduler: Scheduler,
    /// The prepared engine; its [`PreparedEngine::plan`] carries the match
    /// order, strategy and cost estimates.
    pub engine: Arc<PreparedEngine>,
}

/// The result of an `EXPLAIN ANALYZE`: the prepared engine (for the plan
/// and its estimates), the executed outcome, and what the attached trace
/// sink observed — per match-order position — while it ran.
#[derive(Clone)]
pub struct ExplainAnalyzeOutcome {
    /// Name of the target the query ran against.
    pub target: String,
    /// Stable-within-process hash of the canonical pattern.
    pub pattern_hash: u64,
    /// Whether the plan came out of the prepared cache.
    pub cache_hit: bool,
    /// End-to-end service latency in seconds (covers all spans).
    pub latency_seconds: f64,
    /// Candidates generated at each match-order position (the observed
    /// counterpart of the plan's `est_candidates`).
    pub observed_candidates: Vec<u64>,
    /// Consistency checks performed at each position (the observed
    /// counterpart of `est_states`); sums to the outcome's `states`.
    pub observed_states: Vec<u64>,
    /// Where the wall time went: `plan`, `admission_wait`, `enumeration`,
    /// with offsets relative to the query start.
    pub spans: Vec<SpanRecord>,
    /// The routing decision current when the query dispatched.
    pub routing: RoutingDecision,
    /// Whether the run was planner-routed (`true`) or scheduler-pinned.
    pub routed: bool,
    /// The prepared engine whose plan carries the estimates.
    pub engine: Arc<PreparedEngine>,
    /// The executed enumeration (mappings empty — collection is disabled).
    pub outcome: EnumerationOutcome,
}

/// Receiver of a streamed query's frames, driven by the executing service
/// on the calling thread.
///
/// The TCP server implements this over the connection socket (one JSON line
/// per call); the coordinator implements it over per-shard bounded channels;
/// tests implement it over plain vectors.  Returning an error from
/// [`StreamSink::rows`] cancels the enumeration cooperatively.
pub trait StreamSink {
    /// Called once, before enumeration starts, with the stream metadata.
    fn begin(&mut self, header: &StreamHeader) -> std::io::Result<()>;
    /// Called for every frame of up to `chunk` mappings (`rows[i][p]` is the
    /// target node pattern node `p` maps to).  The final frame may be short.
    fn rows(&mut self, rows: &[Vec<NodeId>]) -> std::io::Result<()>;
}

/// Metadata delivered to a [`StreamSink`] before the first row frame.
#[derive(Clone, Debug)]
pub struct StreamHeader {
    /// Name of the target the query runs against.
    pub target: String,
    /// Effective rows-per-frame (after clamping).
    pub chunk: usize,
    /// Whether the prepared engine came out of the prepared cache.
    pub cache_hit: bool,
    /// Stable-within-process hash of the canonical pattern.
    pub pattern_hash: u64,
    /// Algorithm variant that will run.
    pub algorithm: Algorithm,
    /// Ordering strategy of the prepared plan.
    pub strategy: sge_ri::Strategy,
    /// Scheduler the run executes under (the routed choice when `routed`).
    pub scheduler: Scheduler,
    /// Whether the scheduler was planner-routed rather than caller-pinned.
    pub routed: bool,
}

/// The result of one streamed query: the usual outcome plus delivery facts.
#[derive(Clone, Debug)]
pub struct StreamedQueryOutcome {
    /// The underlying query outcome (mappings empty — rows went to the sink).
    pub query: QueryOutcome,
    /// Rows successfully handed to the sink.
    pub rows_sent: u64,
    /// Whether the stream was cut short (sink write failed / consumer gone);
    /// enumeration then stopped early and counts are lower bounds.
    pub cancelled: bool,
}

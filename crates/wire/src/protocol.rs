//! The newline-delimited text protocol and its JSON response encoding.
//!
//! Requests are single lines of UTF-8 text; every request produces exactly
//! one single-line JSON response.  Verbs:
//!
//! ```text
//! LOAD <name> <path>
//! QUERY target=<name> [algo=<a>] [sched=<s>] [strategy=<o>] [mode=<m>]
//!       [max=<n>] [timeout_ms=<n>] [collect=<n>] [seed=<n>]
//!       [emit=stream] [chunk=<k>]
//!       pattern=<inline> | pattern_file=<path>
//! EXPLAIN target=<name> [algo=<a>] [strategy=<o>] [mode=<m>]
//!         pattern=<inline> | pattern_file=<path>
//! EXPLAIN ANALYZE target=<name> [...QUERY knobs...]
//!         pattern=<inline> | pattern_file=<path>
//! BATCH target=<name> n=<count>        (followed by <count> query lines
//!                                       using the QUERY grammar sans verb
//!                                       and target)
//! STATS
//! METRICS
//! SHUTDOWN
//! ```
//!
//! * `algo` — `ri`, `ri-ds`, `ri-ds-si` or `ri-ds-si-fc` (default).
//! * `sched` — `auto` (default: the planner routes the run to the cheapest
//!   scheduler from its cost-model-corrected state estimate), or a pinned
//!   `seq`, `ws:<workers>[:<group>[:nosteal]]` or `rayon:<workers>`.
//!   Responses carry `routed` (whether the planner chose) and `EXPLAIN`
//!   reports the full decision under `routing`.
//! * `strategy` — ordering strategy: `ri-greedy` (default),
//!   `least-frequent-label` or `degree-descending`.
//! * `mode` — candidate generation: `intersection` (default) or
//!   `single-parent`.
//! * `emit` — `buffered` (default, one JSON response) or `stream` (see
//!   below); `chunk` — rows per streamed frame (default 64, clamped to at
//!   most 65536).  Not valid on `BATCH` continuation lines.
//! * `EXPLAIN` plans (through the prepared cache) without running and
//!   reports the match order, chosen strategy and per-position cost
//!   estimates.
//! * `EXPLAIN ANALYZE` plans **and executes** (accepting the full QUERY
//!   knob set): the response carries the planner's per-position
//!   `est_candidates`/`est_states` side-by-side with the
//!   `observed_candidates`/`observed_states` a trace sink recorded during
//!   the run, plus a `spans` array (`plan`, `admission_wait`,
//!   `enumeration`) measured on the service clock.
//! * `METRICS` reports every registered metric (the `service.*`,
//!   `engine.*` and `cache.*` catalogue) as one JSON object.
//! * `pattern` — the `.gfu`/`.gfd` text with newlines replaced by `;` and
//!   in-line whitespace by `,` (a directed triangle is
//!   `3;0;0;0;3;0,1;1,2;2,0`).
//! * `pattern_file` — read the pattern from a server-side file instead.
//!
//! Responses always carry an `ok` field; errors are
//! `{"ok":false,"error":"..."}`.
//!
//! # Streaming responses (`emit=stream`)
//!
//! A streaming `QUERY` is answered with **multiple** lines instead of one:
//!
//! ```text
//! {"ok":true,"stream":true,"target":...,"chunk":K,...}     header
//! {"rows":[[...],[...],...]}                               ≤K rows per frame
//! ...                                                      more frames
//! {"ok":true,"done":true,"matches":N,"rows_sent":M,
//!  "cancelled":false,...}                                  footer
//! ```
//!
//! Clients read the header, then lines while they start with `{"rows":`;
//! the first non-frame line is the footer carrying the usual outcome fields
//! (`matches`, `latency_seconds`, `cache_hit`, `strategy`, …) plus
//! `rows_sent` and `cancelled`.  Rows are emitted in discovery order; on an
//! uncancelled stream `rows_sent == matches`.  Server memory is O(chunk)
//! regardless of result cardinality, and a client that disconnects
//! mid-stream cancels the enumeration cooperatively.
//!
//! # Robustness limits
//!
//! Request lines longer than [`MAX_REQUEST_LINE_BYTES`] and `BATCH` headers
//! announcing more than [`MAX_BATCH_QUERIES`] continuation lines are
//! answered with a structured error and the connection is closed.

use crate::json::Json;
use crate::{
    EmitMode, ExplainAnalyzeOutcome, ExplainOutcome, GraphInfo, QueryOutcome, QuerySpec,
    ServiceError, StreamHeader, StreamedQueryOutcome,
};
use sge_engine::RunConfig;
use sge_graph::NodeId;
use sge_obs::{MetricValue, MetricsSnapshot};
use std::time::Duration;

/// Hard cap on one request line (newline included): longer lines are
/// answered with a structured error and the connection is dropped, so an
/// attacker cannot grow server memory by never sending a newline.
pub const MAX_REQUEST_LINE_BYTES: usize = 1 << 20; // 1 MiB

/// Hard cap on `BATCH n=<count>`: both the number of continuation lines a
/// valid batch may carry and the number of lines the server is willing to
/// drain after a malformed header (the header's announced count is attacker
/// controlled — an unbounded drain would let `n=u64::MAX` pin the
/// connection forever).
pub const MAX_BATCH_QUERIES: usize = 4096;

/// A parsed protocol request.
#[derive(Clone, Debug)]
pub enum Command {
    /// Load a target graph file into the registry.
    Load {
        /// Registry name.
        name: String,
        /// Server-side path of the `.gfu`/`.gfd` file.
        path: String,
        /// Per-load override of the bitmap sidecar's byte cap
        /// (`bitmap_cap=<bytes>`).
        bitmap_cap: Option<usize>,
    },
    /// Run one query.
    Query {
        /// Registry name of the target.
        target: String,
        /// The query.
        spec: QuerySpec,
    },
    /// Plan one query without running it and report the plan.
    Explain {
        /// Registry name of the target.
        target: String,
        /// The query whose plan is reported (run limits are ignored).
        spec: QuerySpec,
    },
    /// Plan **and execute** one query, reporting estimates vs. observed
    /// per-position counts and a span breakdown (`EXPLAIN ANALYZE`).
    ExplainAnalyze {
        /// Registry name of the target.
        target: String,
        /// The query to instrument (full QUERY knob set honored).
        spec: QuerySpec,
    },
    /// Header of a batch; `count` query lines follow.
    Batch {
        /// Registry name of the target all batched queries run against.
        target: String,
        /// Number of query lines that follow.
        count: usize,
    },
    /// Report service statistics.
    Stats,
    /// Report a snapshot of every registered metric.
    Metrics,
    /// Stop the server.
    Shutdown,
}

fn protocol_error(message: impl Into<String>) -> ServiceError {
    ServiceError::Protocol(message.into())
}

/// Decodes the `;`/`,` inline encoding back into graph text.
pub fn decode_inline_pattern(inline: &str) -> String {
    inline.replace(';', "\n").replace(',', " ")
}

/// Encodes graph text into the single-token inline form.
pub fn encode_inline_pattern(text: &str) -> String {
    text.trim_end_matches('\n')
        .replace('\n', ";")
        .replace(' ', ",")
}

struct QueryArgs {
    target: Option<String>,
    spec: Option<QuerySpec>,
}

fn parse_query_args(tokens: &[&str]) -> Result<QueryArgs, ServiceError> {
    let mut target = None;
    let mut pattern_text: Option<String> = None;
    let mut algorithm = sge_ri::Algorithm::RiDsSiFc;
    let mut mode = sge_ri::CandidateMode::default();
    let mut run = RunConfig::default();
    let mut emit = EmitMode::default();
    let mut chunk = crate::DEFAULT_STREAM_CHUNK;
    let mut pinned = false;
    for token in tokens {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| protocol_error(format!("expected key=value, got '{token}'")))?;
        match key {
            "target" => target = Some(value.to_string()),
            "algo" => {
                algorithm = value.parse().map_err(protocol_error)?;
            }
            "sched" => {
                // `sched=auto` is the explicit spelling of the default:
                // let the planner route.  Any concrete scheduler pins it.
                if value.eq_ignore_ascii_case("auto") {
                    pinned = false;
                } else {
                    run.scheduler = value.parse().map_err(protocol_error)?;
                    pinned = true;
                }
            }
            "strategy" => {
                run.strategy = value.parse().map_err(protocol_error)?;
            }
            "mode" => {
                mode = value.parse().map_err(protocol_error)?;
            }
            "max" => {
                let n: u64 = value
                    .parse()
                    .map_err(|_| protocol_error(format!("invalid max '{value}'")))?;
                run.max_matches = Some(n);
            }
            "timeout_ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| protocol_error(format!("invalid timeout_ms '{value}'")))?;
                run.time_limit = Some(Duration::from_millis(ms));
            }
            "collect" => {
                run.collect_mappings = value
                    .parse()
                    .map_err(|_| protocol_error(format!("invalid collect '{value}'")))?;
            }
            "seed" => {
                run.seed = value
                    .parse()
                    .map_err(|_| protocol_error(format!("invalid seed '{value}'")))?;
            }
            "emit" => {
                emit = value.parse().map_err(protocol_error)?;
            }
            "chunk" => {
                chunk = value
                    .parse()
                    .ok()
                    .filter(|&k: &usize| k >= 1)
                    .ok_or_else(|| {
                        protocol_error(format!(
                            "invalid chunk '{value}' (expected an integer >= 1)"
                        ))
                    })?;
            }
            "pattern" => pattern_text = Some(decode_inline_pattern(value)),
            "pattern_file" => {
                pattern_text = Some(std::fs::read_to_string(value).map_err(|err| {
                    protocol_error(format!("cannot read pattern_file '{value}': {err}"))
                })?);
            }
            other => return Err(protocol_error(format!("unknown key '{other}'"))),
        }
    }
    let spec = pattern_text.map(|pattern_text| QuerySpec {
        pattern_text,
        algorithm,
        mode,
        run,
        emit,
        chunk,
        pinned,
    });
    Ok(QueryArgs { target, spec })
}

/// Parses one request line into a [`Command`].
pub fn parse_command(line: &str) -> Result<Command, ServiceError> {
    let line = line.trim();
    let mut tokens = line.split_whitespace();
    let verb = tokens
        .next()
        .ok_or_else(|| protocol_error("empty request"))?
        .to_ascii_uppercase();
    let rest: Vec<&str> = tokens.collect();
    match verb.as_str() {
        "LOAD" => {
            if rest.len() < 2 || rest.len() > 3 {
                return Err(protocol_error(
                    "usage: LOAD <name> <path> [bitmap_cap=<bytes>]",
                ));
            }
            let bitmap_cap = match rest.get(2) {
                None => None,
                Some(token) => match token.split_once('=') {
                    Some(("bitmap_cap", value)) => Some(value.parse::<usize>().map_err(|_| {
                        protocol_error(format!("invalid bitmap_cap '{value}' (expected bytes)"))
                    })?),
                    _ => {
                        return Err(protocol_error(format!(
                            "unknown LOAD option '{token}' (expected bitmap_cap=<bytes>)"
                        )))
                    }
                },
            };
            Ok(Command::Load {
                name: rest[0].to_string(),
                path: rest[1].to_string(),
                bitmap_cap,
            })
        }
        "QUERY" | "EXPLAIN" => {
            // `EXPLAIN ANALYZE` is the two-token form; the modifier comes
            // before the first key=value pair.
            let analyze = verb == "EXPLAIN"
                && rest
                    .first()
                    .is_some_and(|token| token.eq_ignore_ascii_case("ANALYZE"));
            let args = parse_query_args(if analyze { &rest[1..] } else { &rest })?;
            let target = args
                .target
                .ok_or_else(|| protocol_error(format!("{verb} requires target=<name>")))?;
            let spec = args.spec.ok_or_else(|| {
                protocol_error(format!(
                    "{verb} requires pattern=<inline> or pattern_file=<path>"
                ))
            })?;
            if analyze {
                Ok(Command::ExplainAnalyze { target, spec })
            } else if verb == "EXPLAIN" {
                Ok(Command::Explain { target, spec })
            } else {
                Ok(Command::Query { target, spec })
            }
        }
        "BATCH" => {
            let mut target = None;
            let mut count = None;
            for token in &rest {
                match token.split_once('=') {
                    Some(("target", value)) => target = Some(value.to_string()),
                    Some(("n", value)) => {
                        count = Some(value.parse::<usize>().map_err(|_| {
                            protocol_error(format!("invalid batch size '{value}'"))
                        })?);
                    }
                    _ => return Err(protocol_error(format!("unknown batch token '{token}'"))),
                }
            }
            let count = count.ok_or_else(|| protocol_error("BATCH requires n=<count>"))?;
            if count == 0 {
                // An empty batch is always a client bug; answer with a
                // structured error instead of a vacuous ok-reply (there are
                // no continuation lines to consume for n=0).
                return Err(protocol_error("BATCH requires n >= 1 query lines"));
            }
            if count > MAX_BATCH_QUERIES {
                return Err(protocol_error(format!(
                    "BATCH n={count} exceeds the per-batch cap of {MAX_BATCH_QUERIES} queries"
                )));
            }
            Ok(Command::Batch {
                target: target.ok_or_else(|| protocol_error("BATCH requires target=<name>"))?,
                count,
            })
        }
        "STATS" => Ok(Command::Stats),
        "METRICS" => Ok(Command::Metrics),
        "SHUTDOWN" => Ok(Command::Shutdown),
        other => Err(protocol_error(format!(
            "unknown verb '{other}' (expected LOAD, QUERY, EXPLAIN, EXPLAIN ANALYZE, BATCH, \
             STATS, METRICS or SHUTDOWN)"
        ))),
    }
}

/// Parses one batch continuation line (the QUERY grammar without the verb
/// and without `target=`).
pub fn parse_batch_query(line: &str) -> Result<QuerySpec, ServiceError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let args = parse_query_args(&tokens)?;
    if args.target.is_some() {
        return Err(protocol_error(
            "batch query lines must not carry target= (it is fixed by the BATCH header)",
        ));
    }
    let spec = args.spec.ok_or_else(|| {
        protocol_error("batch query requires pattern=<inline> or pattern_file=<path>")
    })?;
    if spec.emit == EmitMode::Stream {
        // A batch is answered with one aggregated JSON line; there is no
        // per-query framing for row streams to ride on.
        return Err(protocol_error(
            "emit=stream is only valid on a top-level QUERY, not inside a BATCH",
        ));
    }
    Ok(spec)
}

/// `{"ok":false,"error":...}`.
pub fn error_response(error: &ServiceError) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::str(error.to_string())),
    ])
}

/// Response to a successful `LOAD`.
pub fn load_response(info: &GraphInfo) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("target", Json::str(info.name.clone())),
        ("nodes", Json::U64(info.nodes as u64)),
        ("edges", Json::U64(info.edges as u64)),
        ("bitmap_rows", Json::U64(info.bitmap_rows as u64)),
        ("bitmap_bytes", Json::U64(info.bitmap_bytes as u64)),
        ("bitmap_capped", Json::Bool(info.bitmap_capped)),
    ])
}

/// The response body shared by `QUERY`, stream footers and `BATCH` result
/// entries: every outcome field except the leading `ok` marker.
pub fn query_body(query: &QueryOutcome) -> Vec<(&'static str, Json)> {
    let outcome = &query.outcome;
    let mut pairs = vec![
        ("target", Json::str(query.target.clone())),
        ("algorithm", Json::str(outcome.algorithm.name())),
        ("strategy", Json::str(outcome.strategy.name())),
        ("scheduler", Json::str(outcome.scheduler.to_string())),
        ("routed", Json::Bool(query.routed)),
        ("workers", Json::U64(outcome.workers as u64)),
        ("matches", Json::U64(outcome.matches)),
        ("states", Json::U64(outcome.states)),
        ("cache_hit", Json::Bool(query.cache_hit)),
        (
            "pattern_hash",
            Json::str(format!("{:016x}", query.pattern_hash)),
        ),
        ("preprocess_seconds", Json::F64(outcome.preprocess_seconds)),
        ("match_seconds", Json::F64(outcome.match_seconds)),
        ("latency_seconds", Json::F64(query.latency_seconds)),
        ("timed_out", Json::Bool(outcome.timed_out)),
        ("limit_hit", Json::Bool(outcome.limit_hit)),
    ];
    if !outcome.mappings.is_empty() {
        pairs.push((
            "mappings",
            Json::Arr(
                outcome
                    .mappings
                    .iter()
                    .map(|mapping| {
                        Json::Arr(mapping.iter().map(|&node| Json::U64(node as u64)).collect())
                    })
                    .collect(),
            ),
        ));
    }
    pairs
}

/// Response to a successful `QUERY`.
pub fn query_response(query: &QueryOutcome) -> Json {
    let mut pairs = vec![("ok", Json::Bool(true))];
    pairs.extend(query_body(query));
    Json::obj(pairs)
}

/// Header line of a streamed `QUERY` (`emit=stream`): announces the stream
/// and its framing before any rows are enumerated.
pub fn stream_header_response(header: &StreamHeader) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("stream", Json::Bool(true)),
        ("target", Json::str(header.target.clone())),
        ("chunk", Json::U64(header.chunk as u64)),
        ("algorithm", Json::str(header.algorithm.name())),
        ("strategy", Json::str(header.strategy.name())),
        ("scheduler", Json::str(header.scheduler.to_string())),
        ("routed", Json::Bool(header.routed)),
        ("cache_hit", Json::Bool(header.cache_hit)),
        (
            "pattern_hash",
            Json::str(format!("{:016x}", header.pattern_hash)),
        ),
    ])
}

/// One row frame of a streamed `QUERY`: up to `chunk` mappings
/// (`rows[i][p]` = target node pattern node `p` maps to).
pub fn stream_rows_frame(rows: &[Vec<NodeId>]) -> Json {
    Json::obj(vec![(
        "rows",
        Json::Arr(
            rows.iter()
                .map(|mapping| {
                    Json::Arr(mapping.iter().map(|&node| Json::U64(node as u64)).collect())
                })
                .collect(),
        ),
    )])
}

/// Footer line of a streamed `QUERY`: the usual outcome fields plus how many
/// rows were delivered and whether the stream was cut short.
pub fn stream_footer_response(streamed: &StreamedQueryOutcome) -> Json {
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("done", Json::Bool(true)),
        ("rows_sent", Json::U64(streamed.rows_sent)),
        ("cancelled", Json::Bool(streamed.cancelled)),
    ];
    pairs.extend(query_body(&streamed.query));
    Json::obj(pairs)
}

/// The `routing` sub-object of `EXPLAIN` / `EXPLAIN ANALYZE` responses: the
/// scheduler the query dispatches under and the numbers that picked it.
fn routing_object(
    decision: &sge_plan::RoutingDecision,
    effective_scheduler: &str,
    routed: bool,
) -> Json {
    Json::obj(vec![
        ("chosen_scheduler", Json::str(effective_scheduler)),
        ("routed", Json::Bool(routed)),
        ("est_states_raw", Json::F64(decision.raw_est_states)),
        (
            "est_states_corrected",
            Json::F64(decision.corrected_est_states),
        ),
        ("correction", Json::F64(decision.correction)),
        ("threshold", Json::F64(decision.threshold)),
    ])
}

/// Response to a successful `EXPLAIN`: the chosen strategy, the match order
/// (pattern node per position) and the per-position cost estimates.
pub fn explain_response(explain: &ExplainOutcome) -> Json {
    let plan = explain.engine.plan();
    let order = Json::Arr(
        plan.order
            .positions
            .iter()
            .map(|&v| Json::U64(v as u64))
            .collect(),
    );
    let est_candidates = Json::Arr(
        plan.cost
            .positions
            .iter()
            .map(|p| Json::F64(p.est_candidates))
            .collect(),
    );
    let est_states = Json::Arr(
        plan.cost
            .positions
            .iter()
            .map(|p| Json::F64(p.est_states))
            .collect(),
    );
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("target", Json::str(explain.target.clone())),
        ("algorithm", Json::str(plan.algorithm.name())),
        ("strategy", Json::str(plan.strategy.name())),
        (
            "mode",
            Json::str(explain.engine.candidate_mode().to_string()),
        ),
        ("positions", Json::U64(plan.num_positions() as u64)),
        ("order", order),
        ("est_candidates", est_candidates),
        ("est_states", est_states),
        ("est_total_states", Json::F64(plan.cost.est_total_states)),
        (
            "routing",
            routing_object(
                &explain.routing,
                &explain.effective_scheduler.to_string(),
                explain.routed,
            ),
        ),
        (
            "kernels",
            Json::Arr(
                explain
                    .engine
                    .resolved_kernels()
                    .into_iter()
                    .map(Json::str)
                    .collect(),
            ),
        ),
        ("impossible", Json::Bool(explain.engine.impossible())),
        ("cache_hit", Json::Bool(explain.cache_hit)),
        (
            "pattern_hash",
            Json::str(format!("{:016x}", explain.pattern_hash)),
        ),
        ("latency_seconds", Json::F64(explain.latency_seconds)),
    ])
}

/// Response to a successful `EXPLAIN ANALYZE`: the plan's per-position
/// estimates side-by-side with the observed counts, the executed outcome,
/// and a span breakdown of the wall time (offsets relative to query start,
/// measured on the service clock).
pub fn explain_analyze_response(analyze: &ExplainAnalyzeOutcome) -> Json {
    let plan = analyze.engine.plan();
    let outcome = &analyze.outcome;
    let order = Json::Arr(
        plan.order
            .positions
            .iter()
            .map(|&v| Json::U64(v as u64))
            .collect(),
    );
    let est_candidates = Json::Arr(
        plan.cost
            .positions
            .iter()
            .map(|p| Json::F64(p.est_candidates))
            .collect(),
    );
    let est_states = Json::Arr(
        plan.cost
            .positions
            .iter()
            .map(|p| Json::F64(p.est_states))
            .collect(),
    );
    let observed = |counts: &[u64]| Json::Arr(counts.iter().map(|&c| Json::U64(c)).collect());
    let spans = Json::Arr(
        analyze
            .spans
            .iter()
            .map(|span| {
                Json::obj(vec![
                    ("name", Json::str(span.name.clone())),
                    ("start_seconds", Json::F64(span.start_seconds)),
                    ("duration_seconds", Json::F64(span.duration_seconds)),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("analyze", Json::Bool(true)),
        ("target", Json::str(analyze.target.clone())),
        ("algorithm", Json::str(plan.algorithm.name())),
        ("strategy", Json::str(plan.strategy.name())),
        (
            "mode",
            Json::str(analyze.engine.candidate_mode().to_string()),
        ),
        ("scheduler", Json::str(outcome.scheduler.to_string())),
        ("workers", Json::U64(outcome.workers as u64)),
        ("positions", Json::U64(plan.num_positions() as u64)),
        ("order", order),
        ("est_candidates", est_candidates),
        ("est_states", est_states),
        (
            "observed_candidates",
            observed(&analyze.observed_candidates),
        ),
        ("observed_states", observed(&analyze.observed_states)),
        ("est_total_states", Json::F64(plan.cost.est_total_states)),
        (
            "routing",
            routing_object(
                &analyze.routing,
                &outcome.scheduler.to_string(),
                analyze.routed,
            ),
        ),
        (
            "kernels",
            Json::Arr(
                analyze
                    .engine
                    .resolved_kernels()
                    .into_iter()
                    .map(Json::str)
                    .collect(),
            ),
        ),
        (
            "kernel_usage",
            Json::obj(vec![
                ("bitmap", Json::U64(outcome.kernels.bitmap)),
                ("gallop", Json::U64(outcome.kernels.gallop)),
                ("merge", Json::U64(outcome.kernels.merge)),
                (
                    "prefilter_rejected",
                    Json::U64(outcome.kernels.prefilter_rejected),
                ),
            ]),
        ),
        ("matches", Json::U64(outcome.matches)),
        ("states", Json::U64(outcome.states)),
        ("steals", Json::U64(outcome.steals)),
        ("cache_hit", Json::Bool(analyze.cache_hit)),
        (
            "pattern_hash",
            Json::str(format!("{:016x}", analyze.pattern_hash)),
        ),
        ("spans", spans),
        ("preprocess_seconds", Json::F64(outcome.preprocess_seconds)),
        ("match_seconds", Json::F64(outcome.match_seconds)),
        ("latency_seconds", Json::F64(analyze.latency_seconds)),
        ("timed_out", Json::Bool(outcome.timed_out)),
        ("limit_hit", Json::Bool(outcome.limit_hit)),
    ])
}

/// Renders a metrics snapshot as the `METRICS` response: one JSON object
/// with every registered metric, sorted by name — counters and gauges as
/// integers, histograms as nested summary objects.
pub fn metrics_json(snapshot: MetricsSnapshot) -> Json {
    let metrics = snapshot
        .into_iter()
        .map(|(name, value)| {
            let rendered = match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => Json::U64(v),
                MetricValue::Histogram(summary) => Json::obj(vec![
                    ("count", Json::U64(summary.count)),
                    ("mean_seconds", Json::F64(summary.mean_seconds)),
                    ("min_seconds", Json::F64(summary.min_seconds)),
                    ("max_seconds", Json::F64(summary.max_seconds)),
                    ("p50_seconds", Json::F64(summary.p50_seconds)),
                    ("p90_seconds", Json::F64(summary.p90_seconds)),
                    ("p99_seconds", Json::F64(summary.p99_seconds)),
                ]),
            };
            (name, rendered)
        })
        .collect();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("metrics", Json::Obj(metrics)),
    ])
}

/// Response to `SHUTDOWN`.
pub fn shutdown_response() -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("shutdown", Json::Bool(true)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sge_engine::Scheduler;
    use sge_ri::Algorithm;

    #[test]
    fn inline_pattern_roundtrip() {
        let text = "3\n0\n0\n0\n3\n0 1\n1 2\n2 0\n";
        let inline = encode_inline_pattern(text);
        assert_eq!(inline, "3;0;0;0;3;0,1;1,2;2,0");
        assert!(!inline.contains(char::is_whitespace));
        assert_eq!(decode_inline_pattern(&inline), text.trim_end().to_string());
    }

    #[test]
    fn parses_load() {
        let command = parse_command("LOAD mol /data/mol.gfu").unwrap();
        match command {
            Command::Load {
                name,
                path,
                bitmap_cap,
            } => {
                assert_eq!(name, "mol");
                assert_eq!(path, "/data/mol.gfu");
                assert_eq!(bitmap_cap, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_command("LOAD mol /data/mol.gfu bitmap_cap=1024").unwrap() {
            Command::Load { bitmap_cap, .. } => assert_eq!(bitmap_cap, Some(1024)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_command("LOAD onlyname").is_err());
        assert!(parse_command("LOAD mol /p bitmap_cap=oops").is_err());
        assert!(parse_command("LOAD mol /p wrong=1").is_err());
    }

    #[test]
    fn parses_query_with_all_knobs() {
        let line = "QUERY target=k5 algo=ri-ds sched=ws:4:2:nosteal max=10 \
                    timeout_ms=500 collect=3 seed=7 pattern=2;0;0;1;0,1";
        let command = parse_command(line).unwrap();
        match command {
            Command::Query { target, spec } => {
                assert_eq!(target, "k5");
                assert_eq!(spec.algorithm, Algorithm::RiDs);
                assert_eq!(
                    spec.run.scheduler,
                    Scheduler::WorkStealing {
                        workers: 4,
                        task_group_size: 2,
                        stealing: false
                    }
                );
                assert_eq!(spec.run.max_matches, Some(10));
                assert_eq!(spec.run.time_limit, Some(Duration::from_millis(500)));
                assert_eq!(spec.run.collect_mappings, 3);
                assert_eq!(spec.run.seed, 7);
                assert_eq!(spec.pattern_text, "2\n0\n0\n1\n0 1");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_strategy_mode_and_explain() {
        let line = "QUERY target=k5 strategy=lfl mode=single-parent pattern=1;0;0";
        match parse_command(line).unwrap() {
            Command::Query { spec, .. } => {
                assert_eq!(spec.run.strategy, sge_ri::Strategy::LeastFrequentLabelFirst);
                assert_eq!(spec.mode, sge_ri::CandidateMode::SingleParent);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_command("EXPLAIN target=k5 strategy=degree-descending pattern=1;0;0").unwrap() {
            Command::Explain { target, spec } => {
                assert_eq!(target, "k5");
                assert_eq!(spec.run.strategy, sge_ri::Strategy::DegreeDescending);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_command("EXPLAIN target=k5").is_err());
        assert!(parse_command("EXPLAIN pattern=1;0;0").is_err());
        assert!(parse_command("QUERY target=k5 strategy=wat pattern=1;0;0").is_err());
        assert!(parse_command("QUERY target=k5 mode=wat pattern=1;0;0").is_err());
    }

    #[test]
    fn query_requires_target_and_pattern() {
        assert!(parse_command("QUERY pattern=1;0;0").is_err());
        assert!(parse_command("QUERY target=k5").is_err());
        assert!(parse_command("QUERY target=k5 algo=wat pattern=1;0;0").is_err());
        assert!(parse_command("QUERY target=k5 bogus=1 pattern=1;0;0").is_err());
    }

    #[test]
    fn parses_batch_header_and_lines() {
        match parse_command("BATCH target=k5 n=3").unwrap() {
            Command::Batch { target, count } => {
                assert_eq!(target, "k5");
                assert_eq!(count, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        let spec = parse_batch_query("algo=ri pattern=1;0;0").unwrap();
        assert_eq!(spec.algorithm, Algorithm::Ri);
        assert!(parse_batch_query("target=k5 pattern=1;0;0").is_err());
        assert!(parse_batch_query("algo=ri").is_err());
        assert!(parse_command("BATCH target=k5").is_err());
        assert!(parse_command("BATCH n=2").is_err());
    }

    #[test]
    fn empty_batch_is_a_structured_error() {
        let err = parse_command("BATCH target=k5 n=0").expect_err("n=0 must be rejected");
        let rendered = error_response(&err).render();
        assert!(rendered.starts_with("{\"ok\":false,"), "{rendered}");
        assert!(rendered.contains("n >= 1"), "{rendered}");
    }

    #[test]
    fn parses_streaming_knobs() {
        match parse_command("QUERY target=k5 emit=stream chunk=5 pattern=1;0;0").unwrap() {
            Command::Query { spec, .. } => {
                assert_eq!(spec.emit, EmitMode::Stream);
                assert_eq!(spec.chunk, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_command("QUERY target=k5 emit=buffered pattern=1;0;0").unwrap() {
            Command::Query { spec, .. } => {
                assert_eq!(spec.emit, EmitMode::Buffered);
                assert_eq!(spec.chunk, crate::DEFAULT_STREAM_CHUNK);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_command("QUERY target=k5 emit=wat pattern=1;0;0").is_err());
        assert!(parse_command("QUERY target=k5 emit=stream chunk=0 pattern=1;0;0").is_err());
        assert!(parse_command("QUERY target=k5 chunk=x pattern=1;0;0").is_err());
        // Streaming is a top-level QUERY affair; batch lines are rejected.
        let err = parse_batch_query("emit=stream pattern=1;0;0").expect_err("no batch streams");
        assert!(err.to_string().contains("only valid on a top-level QUERY"));
    }

    #[test]
    fn oversized_batch_header_is_rejected() {
        let err = parse_command(&format!("BATCH target=k5 n={}", MAX_BATCH_QUERIES + 1))
            .expect_err("over-cap batch must be rejected");
        assert!(err.to_string().contains("per-batch cap"), "{err}");
        // The attacker-controlled extreme is rejected the same way.
        assert!(parse_command("BATCH target=k5 n=18446744073709551615").is_err());
        // The cap itself is fine.
        assert!(parse_command(&format!("BATCH target=k5 n={MAX_BATCH_QUERIES}")).is_ok());
    }

    #[test]
    fn stream_frames_render_as_documented() {
        use sge_engine::Scheduler;
        let header = StreamHeader {
            target: "k5".into(),
            chunk: 2,
            cache_hit: true,
            pattern_hash: 0xABCD,
            algorithm: Algorithm::RiDsSiFc,
            strategy: sge_ri::Strategy::RiGreedy,
            scheduler: Scheduler::Sequential,
            routed: false,
        };
        let rendered = stream_header_response(&header).render();
        assert!(
            rendered.starts_with("{\"ok\":true,\"stream\":true,"),
            "{rendered}"
        );
        assert!(rendered.contains("\"chunk\":2"));
        assert!(rendered.contains("\"cache_hit\":true"));

        let frame = stream_rows_frame(&[vec![0, 1, 2], vec![3, 4, 5]]).render();
        assert_eq!(frame, "{\"rows\":[[0,1,2],[3,4,5]]}");
        assert_eq!(stream_rows_frame(&[]).render(), "{\"rows\":[]}");
    }

    #[test]
    fn parses_explain_analyze() {
        match parse_command("EXPLAIN ANALYZE target=k5 sched=ws:2 seed=9 pattern=1;0;0").unwrap() {
            Command::ExplainAnalyze { target, spec } => {
                assert_eq!(target, "k5");
                assert_eq!(spec.run.scheduler, Scheduler::work_stealing(2));
                assert_eq!(spec.run.seed, 9);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The modifier is case-insensitive like the verb itself.
        assert!(matches!(
            parse_command("explain analyze target=k5 pattern=1;0;0").unwrap(),
            Command::ExplainAnalyze { .. }
        ));
        // A plain EXPLAIN is untouched by the two-token form.
        assert!(matches!(
            parse_command("EXPLAIN target=k5 pattern=1;0;0").unwrap(),
            Command::Explain { .. }
        ));
        assert!(parse_command("EXPLAIN ANALYZE target=k5").is_err());
        assert!(parse_command("EXPLAIN ANALYZE pattern=1;0;0").is_err());
    }

    #[test]
    fn parses_bare_verbs_and_rejects_unknown() {
        assert!(matches!(parse_command("STATS").unwrap(), Command::Stats));
        assert!(matches!(parse_command("stats").unwrap(), Command::Stats));
        assert!(matches!(
            parse_command("METRICS").unwrap(),
            Command::Metrics
        ));
        assert!(matches!(
            parse_command("metrics").unwrap(),
            Command::Metrics
        ));
        assert!(matches!(
            parse_command("SHUTDOWN").unwrap(),
            Command::Shutdown
        ));
        assert!(parse_command("").is_err());
        assert!(parse_command("EXPLODE now").is_err());
    }

    #[test]
    fn error_response_shape() {
        let rendered = error_response(&ServiceError::UnknownTarget("x".into())).render();
        assert_eq!(rendered, "{\"ok\":false,\"error\":\"unknown target 'x'\"}");
    }
}

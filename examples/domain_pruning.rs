//! How RI-DS domains, domain-size ordering and forward checking prune the
//! search space (the paper's Section 4 / Fig. 7 story on one instance).
//!
//! Run with:
//! ```text
//! cargo run --release --example domain_pruning
//! ```

use sge::datasets::{pdbsv1_like, Collection};
use sge::prelude::*;
use sge::ri::{greatest_constraint_first, Domains};

fn main() {
    let collection = Collection::generate(&pdbsv1_like(0.3, 99));
    let instance = collection
        .instances
        .iter()
        .filter(|i| i.pattern.num_nodes() >= 6)
        .max_by_key(|i| i.pattern.num_nodes())
        .expect("collection contains a reasonably sized pattern");
    let target = collection.target_of(instance);
    let pattern = &instance.pattern;

    println!(
        "pattern {} nodes / {} edges  —  target {} nodes / {} edges",
        pattern.num_nodes(),
        pattern.num_edges(),
        target.num_nodes(),
        target.num_edges()
    );

    // Domain assignment (label + degree filter + arc consistency).
    let mut domains = Domains::compute(pattern, target);
    println!("\nper-pattern-node domain sizes after arc consistency:");
    println!("  {:?}", domains.sizes());
    println!("  total = {}", domains.total_size());

    // Forward checking: singleton domains force removals elsewhere.
    let consistent = domains.forward_check();
    println!("\nafter forward checking (consistent = {consistent}):");
    println!("  {:?}", domains.sizes());
    println!("  total = {}", domains.total_size());

    // The SI ordering prefers small domains when degrees tie.
    let plain = greatest_constraint_first(pattern, Some(&domains), false);
    let si = greatest_constraint_first(pattern, Some(&domains), true);
    println!(
        "\nGreatestConstraintFirst order (RI-DS): {:?}",
        plain.positions
    );
    println!("GreatestConstraintFirst order (SI):    {:?}", si.positions);

    // Effect on the search space, through the unified engine.
    println!(
        "\n{:<14} {:>10} {:>12} {:>12}",
        "algorithm", "matches", "states", "total (s)"
    );
    for algorithm in Algorithm::ALL {
        let engine = Engine::prepare(pattern, target, algorithm);
        let result = engine.run(&RunConfig::new(Scheduler::Sequential));
        println!(
            "{:<14} {:>10} {:>12} {:>12.4}",
            algorithm.name(),
            result.matches,
            result.states,
            result.total_seconds()
        );
    }
}

//! Worker-count scaling on a synthetic GRAEMLIN32-like instance.
//!
//! Reproduces, on one instance, what the paper's Tables 2/3 report per
//! collection: the speedup of the work-stealing parallelization as the worker
//! count grows, together with the number of steals and the per-worker load
//! balance.  The instance is prepared **once**; every worker count reuses the
//! same [`Engine`], so preprocessing is excluded from the comparison by
//! construction.  (On a single-core host the wall-clock speedup will stay
//! near 1; the steal counts and the balanced per-worker state counts still
//! demonstrate the scheduler.)
//!
//! Run with:
//! ```text
//! cargo run --release --example parallel_scaling
//! ```

use sge::datasets::{graemlin32_like, Collection};
use sge::prelude::*;

fn main() {
    let collection = Collection::generate(&graemlin32_like(0.3, 7));
    // Choose the largest-pattern instance so there is enough work to share.
    let instance = collection
        .instances
        .iter()
        .max_by_key(|i| i.pattern.num_edges())
        .expect("non-empty collection");
    let target = collection.target_of(instance);

    println!(
        "instance {}: pattern {} nodes / {} edges, target {} nodes / {} edges",
        instance.id,
        instance.pattern.num_nodes(),
        instance.pattern.num_edges(),
        target.num_nodes(),
        target.num_edges()
    );

    let engine = Engine::prepare(&instance.pattern, target, Algorithm::RiDsSiFc);
    println!(
        "preprocessing: {:.6} s (paid once, reused below)",
        engine.preprocess_seconds()
    );

    let baseline = engine.run(&RunConfig::new(Scheduler::work_stealing(1)));
    println!(
        "\n1 worker reference: {} matches, {} states, {:.4} s match time\n",
        baseline.matches, baseline.states, baseline.match_seconds
    );

    println!(
        "{:>8} {:>12} {:>10} {:>12} {:>14} {:>12}",
        "workers", "match (s)", "speedup", "steals", "states σ/worker", "matches"
    );
    for workers in [1usize, 2, 4, 8, 16] {
        let result = engine.run(&RunConfig::new(Scheduler::work_stealing(workers)));
        assert_eq!(
            result.matches, baseline.matches,
            "parallel count must not depend on workers"
        );
        let speedup = baseline.match_seconds / result.match_seconds.max(1e-9);
        println!(
            "{workers:>8} {:>12.4} {:>10.2} {:>12} {:>14.1} {:>12}",
            result.match_seconds,
            speedup,
            result.steals,
            result.worker_states_stddev,
            result.matches
        );
    }

    // What a library scheduler gets you on the same prepared instance.
    let rayon = engine.run(&RunConfig::new(Scheduler::Rayon { workers: 4 }));
    println!(
        "\nrayon-style comparator (4 workers): {} matches, {:.4} s match time",
        rayon.matches, rayon.match_seconds
    );
}

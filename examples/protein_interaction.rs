//! Enumerate motifs in a synthetic protein-protein interaction network.
//!
//! This mirrors the workload the paper's introduction motivates: a dense,
//! labeled biochemical target (our PPIS32 analogue) queried with patterns
//! extracted from it, comparing RI-DS with this paper's improved
//! RI-DS-SI-FC preprocessing — all through the unified [`Engine`].
//!
//! Run with:
//! ```text
//! cargo run --release --example protein_interaction
//! ```

use sge::datasets::{ppis32_like, Collection};
use sge::prelude::*;
use sge::ri::Domains;

fn main() {
    // A small PPIS32-like collection (deterministic in the seed).
    let spec = ppis32_like(0.25, 2024);
    let collection = Collection::generate(&spec);
    let stats = collection.stats();
    println!(
        "collection {}: {} targets ({}..{} nodes, {}..{} edges), degree µ={:.2} σ={:.2}",
        collection.kind,
        stats.graphs,
        stats.nodes_min,
        stats.nodes_max,
        stats.edges_min,
        stats.edges_max,
        stats.degree_mean,
        stats.degree_stddev
    );

    // Pick a mid-sized instance and inspect its domains.
    let instance = collection
        .instances
        .iter()
        .find(|i| i.requested_edges == 16)
        .expect("collection contains 16-edge patterns");
    let target = collection.target_of(instance);
    println!(
        "\ninstance {}: pattern {} nodes / {} edges ({}), target {}",
        instance.id,
        instance.pattern.num_nodes(),
        instance.pattern.num_edges(),
        instance.class.name(),
        target.name()
    );

    let mut domains = Domains::compute(&instance.pattern, target);
    let before: usize = domains.total_size();
    let consistent = domains.forward_check();
    println!(
        "domain sizes: total {before} before forward checking, {} after (consistent: {consistent})",
        domains.total_size()
    );

    println!(
        "\n{:<14} {:>10} {:>12} {:>12} {:>12}",
        "algorithm", "matches", "states", "total (s)", "states/s"
    );
    for algorithm in [Algorithm::RiDs, Algorithm::RiDsSi, Algorithm::RiDsSiFc] {
        let engine = Engine::prepare(&instance.pattern, target, algorithm);
        let result = engine.run(&RunConfig::new(Scheduler::Sequential));
        println!(
            "{:<14} {:>10} {:>12} {:>12.4} {:>12.0}",
            algorithm.name(),
            result.matches,
            result.states,
            result.total_seconds(),
            result.states_per_second()
        );
    }

    // And the parallel schedulers on the best variant: prepare once, run both.
    let engine = Engine::prepare(&instance.pattern, target, Algorithm::RiDsSiFc);
    let stealing = engine.run(&RunConfig::new(Scheduler::work_stealing(4)));
    println!(
        "\nwork-stealing RI-DS-SI-FC (4 workers): {} matches, {} states, {} steals, {:.4} s total",
        stealing.matches,
        stealing.states,
        stealing.steals,
        stealing.total_seconds()
    );
    // Stream the first few matches instead of collecting everything.
    let first = engine.run(
        &RunConfig::new(Scheduler::work_stealing(4))
            .with_max_matches(3)
            .with_collected_mappings(3),
    );
    println!(
        "first {} mappings (sorted): {:?}",
        first.mappings.len(),
        first.mappings
    );
}

//! Quickstart: enumerate a small pattern in a small target, sequentially and
//! in parallel, and print what the paper's evaluation measures for every
//! instance (matches, search-space size, preprocessing vs matching time).
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use sge::prelude::*;
use sge::graph::generators;

fn main() {
    // Pattern: an undirected 4-cycle (stored as symmetric directed edges).
    // Target: a 6x6 grid — every unit square hosts 8 embeddings.
    let pattern = generators::undirected_cycle(4, 0);
    let target = generators::grid(6, 6);

    println!("pattern: {} nodes / {} edges", pattern.num_nodes(), pattern.num_edges());
    println!("target:  {} nodes / {} edges", target.num_nodes(), target.num_edges());
    println!();

    println!("{:<14} {:>10} {:>12} {:>12} {:>12}", "algorithm", "matches", "states", "preproc (s)", "match (s)");
    for algorithm in Algorithm::ALL {
        let result = enumerate(&pattern, &target, &MatchConfig::new(algorithm));
        println!(
            "{:<14} {:>10} {:>12} {:>12.6} {:>12.6}",
            algorithm.name(),
            result.matches,
            result.states,
            result.preprocess_seconds,
            result.match_seconds
        );
    }
    println!();

    // The same instance with the paper's parallel scheduler.
    for workers in [1usize, 2, 4] {
        let config = ParallelConfig::new(Algorithm::RiDsSiFc).with_workers(workers);
        let result = enumerate_parallel(&pattern, &target, &config);
        println!(
            "parallel RI-DS-SI-FC, {workers:>2} workers: {} matches, {} states, {} steals, {:.6} s",
            result.matches, result.states, result.steals, result.match_seconds
        );
    }
}

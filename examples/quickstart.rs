//! Quickstart: prepare a small instance once with the unified [`Engine`],
//! then run it sequentially and in parallel, printing what the paper's
//! evaluation measures for every instance (matches, search-space size,
//! preprocessing vs matching time).
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use sge::graph::generators;
use sge::prelude::*;

fn main() {
    // Pattern: an undirected 4-cycle (stored as symmetric directed edges).
    // Target: a 6x6 grid — every unit square hosts 8 embeddings.
    let pattern = generators::undirected_cycle(4, 0);
    let target = generators::grid(6, 6);

    println!(
        "pattern: {} nodes / {} edges",
        pattern.num_nodes(),
        pattern.num_edges()
    );
    println!(
        "target:  {} nodes / {} edges",
        target.num_nodes(),
        target.num_edges()
    );
    println!();

    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12}",
        "algorithm", "matches", "states", "preproc (s)", "match (s)"
    );
    for algorithm in Algorithm::ALL {
        // Preprocessing runs once per algorithm; every scheduler below reuses it.
        let engine = Engine::prepare(&pattern, &target, algorithm);
        let result = engine.run(&RunConfig::new(Scheduler::Sequential));
        println!(
            "{:<14} {:>10} {:>12} {:>12.6} {:>12.6}",
            algorithm.name(),
            result.matches,
            result.states,
            result.preprocess_seconds,
            result.match_seconds
        );
    }
    println!();

    // The same instance with the paper's parallel scheduler and the
    // rayon-style comparator — one engine, three schedulers.
    let engine = Engine::prepare(&pattern, &target, Algorithm::RiDsSiFc);
    for workers in [1usize, 2, 4] {
        let result = engine.run(&RunConfig::new(Scheduler::work_stealing(workers)));
        println!(
            "work-stealing RI-DS-SI-FC, {workers:>2} workers: {} matches, {} states, {} steals, {:.6} s",
            result.matches, result.states, result.steals, result.match_seconds
        );
    }
    let rayon = engine.run(&RunConfig::new(Scheduler::Rayon { workers: 4 }));
    println!(
        "rayon-style   RI-DS-SI-FC,  4 workers: {} matches, {} states, {} steals, {:.6} s",
        rayon.matches, rayon.states, rayon.steals, rayon.match_seconds
    );
}

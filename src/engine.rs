//! The unified enumeration engine, re-exported from [`sge_engine`].
//!
//! The engine formerly lived in this module; it now resides in its own
//! workspace crate (`crates/engine`) so that the serving subsystem
//! ([`crate::service`]) can build on it without depending on this facade.
//! Every type keeps its path: `sge::engine::Engine`, `sge::Engine` and
//! friends are unchanged, and [`PreparedEngine`] — the owned, cache-friendly
//! counterpart of [`Engine`] — is exported alongside them.
//!
//! See the [`sge_engine`] crate docs for the scheduler-equivalence contract.

pub use sge_engine::{Engine, EnumerationOutcome, PreparedEngine, RunConfig, Scheduler};

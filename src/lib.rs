//! # sge — Shared Memory Parallel Subgraph Enumeration
//!
//! A Rust reproduction of *"Shared Memory Parallel Subgraph Enumeration"*
//! (Kimmig, Meyerhenke, Strash, 2017): the RI / RI-DS subgraph enumeration
//! algorithms of Bonnici et al., the paper's RI-DS-SI / RI-DS-SI-FC
//! preprocessing improvements, and a shared-memory parallelization based on
//! work stealing with private deques.
//!
//! This crate is a thin facade re-exporting the workspace members:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`graph`] | labeled directed CSR graphs, builders, text/JSON I/O, generators |
//! | [`ri`] | sequential RI, RI-DS, RI-DS-SI, RI-DS-SI-FC |
//! | [`vf2`] | a VF2-style baseline used for cross-validation |
//! | [`stealing`] | the generic private-deque work-stealing engine |
//! | [`parallel`] | parallel RI / RI-DS-SI-FC plus ablation schedulers |
//! | [`datasets`] | synthetic PPIS32 / GRAEMLIN32 / PDBSv1 analogues |
//! | [`util`] | bitsets, statistics, timing |
//!
//! ## Quickstart
//!
//! ```
//! use sge::prelude::*;
//!
//! // Pattern: a directed triangle. Target: a 5-clique.
//! let pattern = sge::graph::generators::directed_cycle(3, 0);
//! let target = sge::graph::generators::clique(5, 0);
//!
//! // Sequential RI-DS-SI-FC.
//! let seq = enumerate(&pattern, &target, &MatchConfig::new(Algorithm::RiDsSiFc));
//!
//! // Parallel RI-DS-SI-FC with 4 workers and task groups of 4.
//! let par = enumerate_parallel(
//!     &pattern,
//!     &target,
//!     &ParallelConfig::new(Algorithm::RiDsSiFc).with_workers(4),
//! );
//!
//! assert_eq!(seq.matches, 60);
//! assert_eq!(par.matches, 60);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sge_datasets as datasets;
pub use sge_graph as graph;
pub use sge_parallel as parallel;
pub use sge_ri as ri;
pub use sge_stealing as stealing;
pub use sge_util as util;
pub use sge_vf2 as vf2;

/// The most commonly used items in one import.
pub mod prelude {
    pub use sge_graph::{Graph, GraphBuilder};
    pub use sge_parallel::{enumerate_parallel, ParallelConfig, ParallelResult};
    pub use sge_ri::{enumerate, Algorithm, MatchConfig, MatchResult};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let pattern = crate::graph::generators::directed_path(2, 0);
        let target = crate::graph::generators::clique(3, 0);
        let seq = enumerate(&pattern, &target, &MatchConfig::new(Algorithm::Ri));
        let par = enumerate_parallel(
            &pattern,
            &target,
            &ParallelConfig::new(Algorithm::Ri).with_workers(2),
        );
        assert_eq!(seq.matches, 6);
        assert_eq!(par.matches, 6);
    }
}

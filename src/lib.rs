//! # sge — Shared Memory Parallel Subgraph Enumeration
//!
//! A Rust reproduction of *"Shared Memory Parallel Subgraph Enumeration"*
//! (Kimmig, Meyerhenke, Strash, 2017): the RI / RI-DS subgraph enumeration
//! algorithms of Bonnici et al., the paper's RI-DS-SI / RI-DS-SI-FC
//! preprocessing improvements, and a shared-memory parallelization based on
//! work stealing with private deques.
//!
//! The public API is the unified [`Engine`]: prepare an instance once, then
//! run it under any [`Scheduler`] — sequential, the paper's work-stealing
//! runtime, or a rayon-style first-level pool — with one knob set and one
//! result shape.  See the [`engine`] module for the scheduler-equivalence
//! contract.
//!
//! This crate is a thin facade re-exporting the workspace members:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`graph`] | labeled directed CSR graphs, builders, text I/O, generators |
//! | [`plan`] | query planning: ordering strategies, cost model, EXPLAIN-able plans |
//! | [`ri`] | sequential RI, RI-DS, RI-DS-SI, RI-DS-SI-FC |
//! | [`vf2`] | a VF2-style baseline used for cross-validation |
//! | [`stealing`] | the generic private-deque work-stealing engine |
//! | [`parallel`] | parallel RI / RI-DS-SI-FC plus ablation schedulers |
//! | [`engine`] | the unified [`Engine`]/[`Scheduler`] API and [`PreparedEngine`] |
//! | [`wire`] | the serving wire plane: line-protocol codec, JSON encoder, stream framing |
//! | [`service`] | query serving: graph registry, prepared cache, batch executor, TCP server, shard coordinator |
//! | [`obs`] | observability: metrics registry, query traces, enumeration trace sinks, event log |
//! | [`datasets`] | synthetic PPIS32 / GRAEMLIN32 / PDBSv1 analogues |
//! | [`util`] | bitsets, statistics, timing |
//!
//! ## Quickstart
//!
//! ```
//! use sge::prelude::*;
//!
//! // Pattern: a directed triangle. Target: a 5-clique.
//! let pattern = sge::graph::generators::directed_cycle(3, 0);
//! let target = sge::graph::generators::clique(5, 0);
//!
//! // Preprocess once (domains, forward checking, ordering)…
//! let engine = Engine::prepare(&pattern, &target, Algorithm::RiDsSiFc);
//!
//! // …then run under any scheduler with the same knobs and result shape.
//! let seq = engine.run(&RunConfig::new(Scheduler::Sequential));
//! let par = engine.run(&RunConfig::new(Scheduler::work_stealing(4)));
//! let ray = engine.run(&RunConfig::new(Scheduler::Rayon { workers: 4 }));
//!
//! assert_eq!(seq.matches, 60);
//! assert_eq!(par.matches, 60);
//! assert_eq!(ray.matches, 60);
//! // Same search tree under every scheduler:
//! assert_eq!(seq.states, par.states);
//! assert_eq!(seq.states, ray.states);
//!
//! // The full knob set works uniformly — e.g. stop after 10 matches:
//! let first10 = engine.run(&RunConfig::new(Scheduler::work_stealing(2)).with_max_matches(10));
//! assert_eq!(first10.matches, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;

pub use sge_datasets as datasets;
pub use sge_graph as graph;
pub use sge_obs as obs;
pub use sge_parallel as parallel;
pub use sge_plan as plan;
pub use sge_ri as ri;
pub use sge_service as service;
pub use sge_stealing as stealing;
pub use sge_util as util;
pub use sge_vf2 as vf2;
pub use sge_wire as wire;

pub use engine::{Engine, EnumerationOutcome, PreparedEngine, RunConfig, Scheduler};
pub use sge_plan::{Planner, QueryPlan, Strategy};

/// The most commonly used items in one import.
pub mod prelude {
    pub use crate::engine::{Engine, EnumerationOutcome, PreparedEngine, RunConfig, Scheduler};
    pub use sge_graph::{Graph, GraphBuilder};
    pub use sge_plan::{Planner, QueryPlan, Strategy};
    pub use sge_ri::{Algorithm, MatchVisitor};
    pub use sge_service::{QuerySet, QuerySpec, Service, ServiceConfig};

    // Legacy per-crate entry points, kept as thin shims over the engine
    // machinery for existing callers.
    pub use sge_parallel::{enumerate_parallel, ParallelConfig, ParallelResult};
    pub use sge_ri::{enumerate, MatchConfig, MatchResult};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let pattern = crate::graph::generators::directed_path(2, 0);
        let target = crate::graph::generators::clique(3, 0);
        let engine = Engine::prepare(&pattern, &target, Algorithm::Ri);
        let seq = engine.run(&RunConfig::new(Scheduler::Sequential));
        let par = engine.run(&RunConfig::new(Scheduler::work_stealing(2)));
        assert_eq!(seq.matches, 6);
        assert_eq!(par.matches, 6);

        // The legacy shims still agree with the engine.
        let legacy_seq = enumerate(&pattern, &target, &MatchConfig::new(Algorithm::Ri));
        let legacy_par = enumerate_parallel(
            &pattern,
            &target,
            &ParallelConfig::new(Algorithm::Ri).with_workers(2),
        );
        assert_eq!(legacy_seq.matches, 6);
        assert_eq!(legacy_par.matches, 6);
    }
}

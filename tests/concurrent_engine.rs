//! One prepared `Engine` serving parallel `run()` calls from many threads.
//!
//! This is the invariant the service's PreparedCache is built on: a single
//! preparation can be shared (`&Engine` is `Send + Sync`) and concurrently
//! executed under any mix of schedulers, with results identical to
//! sequential runs.

use sge::prelude::*;
use sge::PreparedEngine;
use std::sync::Arc;

fn thread_schedulers(i: usize) -> Scheduler {
    match i % 4 {
        0 => Scheduler::Sequential,
        1 => Scheduler::work_stealing(2),
        2 => Scheduler::work_stealing(4),
        _ => Scheduler::Rayon { workers: 2 },
    }
}

#[test]
fn one_engine_many_threads_matches_sequential() {
    let pattern = sge::graph::generators::undirected_cycle(4, 0);
    let target = sge::graph::generators::grid(5, 5);
    let engine = Engine::prepare(&pattern, &target, Algorithm::RiDsSiFc);

    let reference = engine.run(&RunConfig::default().with_collected_mappings(100_000));
    assert!(reference.matches > 0);

    // 8 threads hammer the same prepared engine concurrently, twice each.
    std::thread::scope(|scope| {
        let engine = &engine;
        let reference = &reference;
        for i in 0..8 {
            scope.spawn(move || {
                for _ in 0..2 {
                    let run = RunConfig::new(thread_schedulers(i))
                        .with_collected_mappings(100_000)
                        .with_seed(i as u64);
                    let outcome = engine.run(&run);
                    assert_eq!(outcome.matches, reference.matches, "thread {i}");
                    assert_eq!(outcome.states, reference.states, "thread {i}");
                    assert_eq!(outcome.mappings, reference.mappings, "thread {i}");
                }
            });
        }
    });
}

#[test]
fn one_prepared_engine_many_threads_matches_sequential() {
    // The owned flavor the cache actually stores.
    let pattern = Arc::new(sge::graph::generators::directed_cycle(3, 0));
    let target = Arc::new(sge::graph::generators::clique(7, 0));
    let prepared = Arc::new(PreparedEngine::prepare(
        pattern,
        target,
        Algorithm::RiDsSiFc,
    ));
    let reference = prepared.run(&RunConfig::default().with_collected_mappings(100_000));
    assert_eq!(reference.matches, 210); // 7 * 6 * 5 directed 3-cycles

    let handles: Vec<_> = (0..8)
        .map(|i| {
            let prepared = Arc::clone(&prepared);
            let expected = reference.mappings.clone();
            std::thread::spawn(move || {
                let run = RunConfig::new(thread_schedulers(i)).with_collected_mappings(100_000);
                let outcome = prepared.run(&run);
                assert_eq!(outcome.matches, 210, "thread {i}");
                assert_eq!(outcome.mappings, expected, "thread {i}");
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
}

#[test]
fn concurrent_limited_runs_stay_exact() {
    // max_matches budgets are per-run state; concurrent limited runs must
    // not interfere with each other.
    let pattern = sge::graph::generators::directed_path(2, 0);
    let target = sge::graph::generators::clique(10, 0); // 90 embeddings
    let engine = Engine::prepare(&pattern, &target, Algorithm::Ri);
    std::thread::scope(|scope| {
        let engine = &engine;
        for i in 0..6 {
            scope.spawn(move || {
                let limit = 5 + 10 * i as u64;
                let run = RunConfig::new(thread_schedulers(i)).with_max_matches(limit);
                let outcome = engine.run(&run);
                assert_eq!(outcome.matches, limit.min(90), "thread {i}");
            });
        }
    });
}

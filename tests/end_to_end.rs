//! End-to-end pipeline tests: generate a synthetic collection, run every
//! algorithm variant through the unified engine under several schedulers, and
//! check that they all agree with each other and with the independent VF2
//! oracle.

use sge::datasets::{graemlin32_like, pdbsv1_like, ppis32_like, Collection};
use sge::prelude::*;

/// Runs every variant on a handful of instances from `collection` and checks
/// agreement.  Instances are capped (`max_edges`, `max_instances`) so the test
/// stays fast in debug builds.
fn check_collection(collection: &Collection, max_edges: usize, max_instances: usize) {
    let mut checked = 0usize;
    for instance in &collection.instances {
        if instance.pattern.num_edges() > max_edges {
            continue;
        }
        if checked >= max_instances {
            break;
        }
        checked += 1;
        let target = collection.target_of(instance);

        let oracle = sge::vf2::count_matches(&instance.pattern, target);
        assert!(oracle >= 1, "extracted instance {} must embed", instance.id);

        for algorithm in Algorithm::ALL {
            // One preparation per (instance, algorithm); every scheduler
            // reuses it.
            let engine = Engine::prepare(&instance.pattern, target, algorithm);
            let sequential = engine.run(&RunConfig::default());
            assert_eq!(
                sequential.matches, oracle,
                "{algorithm} disagrees with VF2 on {}",
                instance.id
            );

            for scheduler in [
                Scheduler::work_stealing(2),
                Scheduler::work_stealing(4),
                Scheduler::Rayon { workers: 2 },
            ] {
                let outcome = engine.run(&RunConfig::new(scheduler));
                assert_eq!(
                    outcome.matches, oracle,
                    "{scheduler} {algorithm} disagrees on {}",
                    instance.id
                );
                assert_eq!(
                    outcome.states, sequential.states,
                    "{scheduler} {algorithm} explores a different search space on {}",
                    instance.id
                );
            }
        }
    }
    assert!(checked > 0, "no instance satisfied the test filters");
}

#[test]
fn pdbsv1_like_pipeline_agrees() {
    let collection = Collection::generate(&pdbsv1_like(0.15, 31));
    check_collection(&collection, 16, 6);
}

#[test]
fn graemlin32_like_pipeline_agrees() {
    let collection = Collection::generate(&graemlin32_like(0.12, 32));
    check_collection(&collection, 8, 5);
}

#[test]
fn ppis32_like_pipeline_agrees() {
    let collection = Collection::generate(&ppis32_like(0.12, 33));
    check_collection(&collection, 8, 5);
}

#[test]
fn graph_text_format_roundtrip_preserves_match_counts() {
    let collection = Collection::generate(&pdbsv1_like(0.12, 77));
    let instance = &collection.instances[0];
    let target = collection.target_of(instance);

    let target_text = sge::graph::io::write_graph(target);
    let pattern_text = sge::graph::io::write_graph(&instance.pattern);
    // Pattern and target must share one label interner so their label ids stay
    // consistent across the two files.
    let mut interner = std::collections::HashMap::new();
    let target2 = sge::graph::io::parse_graph_with_interner(&target_text, &mut interner)
        .expect("target roundtrip");
    let pattern2 = sge::graph::io::parse_graph_with_interner(&pattern_text, &mut interner)
        .expect("pattern roundtrip");

    let before = Engine::prepare(&instance.pattern, target, Algorithm::RiDs).count();
    let after = Engine::prepare(&pattern2, &target2, Algorithm::RiDs).count();
    assert_eq!(before, after);
}

#[test]
fn time_limited_runs_report_consistent_lower_bounds() {
    let collection = Collection::generate(&graemlin32_like(0.2, 55));
    let instance = collection
        .instances
        .iter()
        .max_by_key(|i| i.pattern.num_edges())
        .unwrap();
    let target = collection.target_of(instance);
    let engine = Engine::prepare(&instance.pattern, target, Algorithm::RiDs);
    let limited =
        engine.run(&RunConfig::default().with_time_limit(std::time::Duration::from_millis(5)));
    let full = engine.run(&RunConfig::default());
    assert!(limited.matches <= full.matches);
    assert!(limited.states <= full.states);
}

//! End-to-end pipeline tests: generate a synthetic collection, run every
//! sequential and parallel algorithm variant on its instances, and check that
//! they all agree with each other and with the independent VF2 oracle.

use sge::datasets::{graemlin32_like, pdbsv1_like, ppis32_like, Collection};
use sge::prelude::*;

/// Runs every variant on a handful of instances from `collection` and checks
/// agreement.  Instances are capped (`max_edges`, `max_instances`) so the test
/// stays fast in debug builds.
fn check_collection(collection: &Collection, max_edges: usize, max_instances: usize) {
    let mut checked = 0usize;
    for instance in &collection.instances {
        if instance.pattern.num_edges() > max_edges {
            continue;
        }
        if checked >= max_instances {
            break;
        }
        checked += 1;
        let target = collection.target_of(instance);

        let oracle = sge::vf2::count_matches(&instance.pattern, target);
        assert!(oracle >= 1, "extracted instance {} must embed", instance.id);

        let mut states_by_algo = Vec::new();
        for algorithm in Algorithm::ALL {
            let result = enumerate(&instance.pattern, target, &MatchConfig::new(algorithm));
            assert_eq!(
                result.matches, oracle,
                "{algorithm} disagrees with VF2 on {}",
                instance.id
            );
            states_by_algo.push((algorithm, result.states));
        }

        // Parallel RI and parallel RI-DS-SI-FC with a couple of worker counts.
        for algorithm in [Algorithm::Ri, Algorithm::RiDsSiFc] {
            for workers in [2usize, 4] {
                let result = enumerate_parallel(
                    &instance.pattern,
                    target,
                    &ParallelConfig::new(algorithm).with_workers(workers),
                );
                assert_eq!(
                    result.matches, oracle,
                    "parallel {algorithm} with {workers} workers disagrees on {}",
                    instance.id
                );
                let sequential_states = states_by_algo
                    .iter()
                    .find(|(a, _)| *a == algorithm)
                    .map(|(_, s)| *s)
                    .unwrap();
                assert_eq!(
                    result.states, sequential_states,
                    "parallel {algorithm} explores a different search space on {}",
                    instance.id
                );
            }
        }
    }
    assert!(checked > 0, "no instance satisfied the test filters");
}

#[test]
fn pdbsv1_like_pipeline_agrees() {
    let collection = Collection::generate(&pdbsv1_like(0.15, 31));
    check_collection(&collection, 16, 6);
}

#[test]
fn graemlin32_like_pipeline_agrees() {
    let collection = Collection::generate(&graemlin32_like(0.12, 32));
    check_collection(&collection, 8, 5);
}

#[test]
fn ppis32_like_pipeline_agrees() {
    let collection = Collection::generate(&ppis32_like(0.12, 33));
    check_collection(&collection, 8, 5);
}

#[test]
fn graph_text_format_roundtrip_preserves_match_counts() {
    let collection = Collection::generate(&pdbsv1_like(0.12, 77));
    let instance = &collection.instances[0];
    let target = collection.target_of(instance);

    let target_text = sge::graph::io::write_graph(target);
    let pattern_text = sge::graph::io::write_graph(&instance.pattern);
    // Pattern and target must share one label interner so their label ids stay
    // consistent across the two files.
    let mut interner = std::collections::HashMap::new();
    let target2 = sge::graph::io::parse_graph_with_interner(&target_text, &mut interner)
        .expect("target roundtrip");
    let pattern2 = sge::graph::io::parse_graph_with_interner(&pattern_text, &mut interner)
        .expect("pattern roundtrip");

    let before = enumerate(&instance.pattern, target, &MatchConfig::new(Algorithm::RiDs)).matches;
    let after = enumerate(&pattern2, &target2, &MatchConfig::new(Algorithm::RiDs)).matches;
    assert_eq!(before, after);
}

#[test]
fn time_limited_runs_report_consistent_lower_bounds() {
    let collection = Collection::generate(&graemlin32_like(0.2, 55));
    let instance = collection
        .instances
        .iter()
        .max_by_key(|i| i.pattern.num_edges())
        .unwrap();
    let target = collection.target_of(instance);
    let limited = enumerate(
        &instance.pattern,
        target,
        &MatchConfig::new(Algorithm::RiDs).with_time_limit(std::time::Duration::from_millis(5)),
    );
    let full = enumerate(&instance.pattern, target, &MatchConfig::new(Algorithm::RiDs));
    assert!(limited.matches <= full.matches);
    assert!(limited.states <= full.states);
}

//! Property-based tests of the parallel scheduler's observable behaviour on
//! randomized subgraph-enumeration instances: the match count and the search
//! space size must be completely independent of the worker count, the task
//! group size, the stealing switch and the scheduler seed.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sge::prelude::*;
use sge::graph::{Graph, GraphBuilder};

fn random_labeled_graph(seed: u64, n: usize, p: f64, labels: u32) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_node(rng.gen_range(0..labels));
    }
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v && rng.gen_bool(p) {
                b.add_edge(u, v, 0);
            }
        }
    }
    b.build()
}

fn extracted_pattern(seed: u64, target: &Graph, nodes: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let start = rng.gen_range(0..target.num_nodes()) as u32;
    let mut selected = vec![start];
    for _ in 0..nodes * 8 {
        if selected.len() >= nodes {
            break;
        }
        let from = selected[rng.gen_range(0..selected.len())];
        let neighbors = target.undirected_neighbors(from);
        if neighbors.is_empty() {
            break;
        }
        let next = neighbors[rng.gen_range(0..neighbors.len())];
        if !selected.contains(&next) {
            selected.push(next);
        }
    }
    let mut b = GraphBuilder::new();
    for &v in &selected {
        b.add_node(target.label(v));
    }
    for (i, &u) in selected.iter().enumerate() {
        for (j, &v) in selected.iter().enumerate() {
            if let Some(l) = target.edge_label(u, v) {
                b.add_edge(i as u32, j as u32, l);
            }
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_is_schedule_invariant(
        seed in 0u64..5_000,
        n in 12usize..22,
        k in 3usize..6,
        workers in 1usize..6,
        group_size in 1usize..9,
        steal in proptest::bool::ANY,
    ) {
        let target = random_labeled_graph(seed, n, 0.15, 3);
        let pattern = extracted_pattern(seed ^ 0xBEEF, &target, k);
        let sequential = enumerate(&pattern, &target, &MatchConfig::new(Algorithm::RiDsSiFc));

        let config = ParallelConfig::new(Algorithm::RiDsSiFc)
            .with_workers(workers)
            .with_task_group_size(group_size)
            .with_stealing(steal);
        let parallel = enumerate_parallel(&pattern, &target, &config);

        prop_assert_eq!(parallel.matches, sequential.matches);
        prop_assert_eq!(parallel.states, sequential.states);
        prop_assert!(!parallel.timed_out);
    }

    #[test]
    fn rayon_comparator_is_also_schedule_invariant(
        seed in 0u64..5_000,
        n in 10usize..18,
        k in 3usize..5,
        workers in 1usize..4,
    ) {
        let target = random_labeled_graph(seed, n, 0.18, 2);
        let pattern = extracted_pattern(seed ^ 0xF00D, &target, k);
        let sequential = enumerate(&pattern, &target, &MatchConfig::new(Algorithm::Ri));
        let rayon = sge::parallel::enumerate_rayon(&pattern, &target, Algorithm::Ri, workers);
        prop_assert_eq!(rayon.matches, sequential.matches);
        prop_assert_eq!(rayon.states, sequential.states);
    }

    #[test]
    fn scheduler_seed_does_not_change_results(
        seed in 0u64..5_000,
        scheduler_seed in 0u64..1_000,
    ) {
        let target = random_labeled_graph(seed, 18, 0.15, 2);
        let pattern = extracted_pattern(seed ^ 0xCAFE, &target, 4);
        let mut config = ParallelConfig::new(Algorithm::Ri).with_workers(3);
        config.seed = scheduler_seed;
        let a = enumerate_parallel(&pattern, &target, &config);
        config.seed = scheduler_seed.wrapping_add(1);
        let b = enumerate_parallel(&pattern, &target, &config);
        prop_assert_eq!(a.matches, b.matches);
        prop_assert_eq!(a.states, b.states);
    }
}

//! Scheduler-parity property tests of the unified engine: for randomized
//! subgraph-enumeration instances, `Sequential`, `WorkStealing` (1/2/4
//! workers, stealing on and off) and `Rayon` must report identical `matches`,
//! the parallel schedulers must preserve the sequential search-space size
//! (the paper's schedule-invariance), and on small instances the counts are
//! cross-validated against the independent `sge_vf2` oracle.
//!
//! Seeds are deterministic, so any failure reproduces exactly.

use sge::obs::TraceSink;
use sge::prelude::*;
use sge::ri::CandidateMode;
use sge::util::SplitMix64;
use sge::Strategy;
use std::sync::Arc;
use std::time::Duration;

fn random_labeled_graph(seed: u64, n: usize, p: f64, labels: usize) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_node(rng.next_below(labels) as u32);
    }
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v && rng.next_bool(p) {
                b.add_edge(u, v, 0);
            }
        }
    }
    b.build()
}

/// Like [`random_labeled_graph`] but with multiple edge labels and occasional
/// self-loops — the shapes the intersection-based candidate generator must
/// get right beyond plain single-label adjacency.
fn random_multi_label_graph(
    seed: u64,
    n: usize,
    p: f64,
    labels: usize,
    edge_labels: usize,
) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_node(rng.next_below(labels) as u32);
    }
    for u in 0..n as u32 {
        if rng.next_bool(0.25) {
            b.add_edge(u, u, rng.next_below(edge_labels) as u32);
        }
        for v in 0..n as u32 {
            if u != v && rng.next_bool(p) {
                b.add_edge(u, v, rng.next_below(edge_labels) as u32);
            }
        }
    }
    b.build()
}

fn extracted_pattern(seed: u64, target: &Graph, nodes: usize) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let start = rng.next_below(target.num_nodes()) as u32;
    let mut selected = vec![start];
    for _ in 0..nodes * 8 {
        if selected.len() >= nodes {
            break;
        }
        let from = selected[rng.next_below(selected.len())];
        let neighbors = target.undirected_neighbors(from);
        if neighbors.is_empty() {
            break;
        }
        let next = neighbors[rng.next_below(neighbors.len())];
        if !selected.contains(&next) {
            selected.push(next);
        }
    }
    let mut b = GraphBuilder::new();
    for &v in &selected {
        b.add_node(target.label(v));
    }
    for (i, &u) in selected.iter().enumerate() {
        for (j, &v) in selected.iter().enumerate() {
            if let Some(l) = target.edge_label(u, v) {
                b.add_edge(i as u32, j as u32, l);
            }
        }
    }
    b.build()
}

/// Every scheduler variant exercised by the parity sweep.
fn all_schedulers(task_group_size: usize) -> Vec<Scheduler> {
    let mut schedulers = vec![Scheduler::Sequential];
    for workers in [1usize, 2, 4] {
        for stealing in [true, false] {
            schedulers.push(Scheduler::WorkStealing {
                workers,
                task_group_size,
                stealing,
            });
        }
    }
    schedulers.push(Scheduler::Rayon { workers: 3 });
    schedulers
}

#[test]
fn all_schedulers_agree_on_random_instances() {
    for case in 0..16u64 {
        let mut rng = SplitMix64::new(0x5EED ^ case);
        let n = 12 + rng.next_below(10);
        let k = 3 + rng.next_below(3);
        let group_size = 1 + rng.next_below(8);
        let target = random_labeled_graph(rng.next_u64(), n, 0.15, 3);
        let pattern = extracted_pattern(rng.next_u64(), &target, k);

        let engine = Engine::prepare(&pattern, &target, Algorithm::RiDsSiFc);
        let reference = engine.run(&RunConfig::default());
        for scheduler in all_schedulers(group_size) {
            let outcome = engine.run(&RunConfig::new(scheduler));
            assert_eq!(
                outcome.matches, reference.matches,
                "case={case} {scheduler}: match count diverged"
            );
            // The work-stealing and rayon-style schedulers explore exactly
            // the sequential search tree, so the total number of consistency
            // checks is schedule-invariant.
            assert_eq!(
                outcome.states, reference.states,
                "case={case} {scheduler}: search space diverged"
            );
            assert!(!outcome.timed_out, "case={case} {scheduler}");
        }
    }
}

#[test]
fn trace_sinks_report_schedule_invariant_per_position_counts() {
    // The observability counters are part of the schedule-invariance
    // contract: every scheduler explores exactly the sequential search tree,
    // so for randomized instances the per-position observed candidate and
    // state totals a `TraceSink` records must be identical across
    // `Sequential`, every `WorkStealing` variant and `Rayon` — and the
    // per-position states must sum to the outcome's reported state count.
    for case in 0..8u64 {
        let mut rng = SplitMix64::new(0x0B5E ^ case);
        let n = 12 + rng.next_below(8);
        let k = 3 + rng.next_below(3);
        let group_size = 1 + rng.next_below(8);
        let target = random_labeled_graph(rng.next_u64(), n, 0.15, 3);
        let pattern = extracted_pattern(rng.next_u64(), &target, k);
        let mut reference: Option<(Vec<u64>, Vec<u64>)> = None;
        for scheduler in all_schedulers(group_size) {
            let mut engine = Engine::prepare(&pattern, &target, Algorithm::RiDsSiFc);
            let sink = Arc::new(TraceSink::new(engine.plan().num_positions()));
            engine.set_trace_sink(Arc::clone(&sink));
            let outcome = engine.run(&RunConfig::new(scheduler));
            assert!(!outcome.timed_out, "case={case} {scheduler}");
            assert_eq!(
                sink.states_total(),
                outcome.states,
                "case={case} {scheduler}: sink missed consistency checks"
            );
            let observed = (sink.candidates_per_position(), sink.states_per_position());
            match &reference {
                None => reference = Some(observed),
                Some(expected) => assert_eq!(
                    &observed, expected,
                    "case={case} {scheduler}: observed per-position counts diverged"
                ),
            }
        }
    }
}

#[test]
fn scheduler_counts_cross_validate_against_vf2() {
    for case in 0..10u64 {
        let mut rng = SplitMix64::new(0xFACE ^ case);
        let n = 10 + rng.next_below(8);
        let target = random_labeled_graph(rng.next_u64(), n, 0.18, 2);
        let pattern = extracted_pattern(rng.next_u64(), &target, 4);
        let oracle = sge::vf2::count_matches(&pattern, &target);
        for algorithm in [Algorithm::Ri, Algorithm::RiDsSiFc] {
            let engine = Engine::prepare(&pattern, &target, algorithm);
            for scheduler in [
                Scheduler::Sequential,
                Scheduler::work_stealing(2),
                Scheduler::Rayon { workers: 2 },
            ] {
                let outcome = engine.run(&RunConfig::new(scheduler));
                assert_eq!(
                    outcome.matches, oracle,
                    "case={case} {algorithm} {scheduler} disagrees with VF2"
                );
            }
        }
    }
}

#[test]
fn scheduler_seed_does_not_change_results() {
    for case in 0..6u64 {
        let mut rng = SplitMix64::new(0xCAFE ^ case);
        let target = random_labeled_graph(rng.next_u64(), 18, 0.15, 2);
        let pattern = extracted_pattern(rng.next_u64(), &target, 4);
        let engine = Engine::prepare(&pattern, &target, Algorithm::Ri);
        let scheduler = Scheduler::work_stealing(3);
        let a = engine.run(&RunConfig::new(scheduler).with_seed(case));
        let b = engine.run(&RunConfig::new(scheduler).with_seed(case.wrapping_add(1)));
        assert_eq!(a.matches, b.matches, "case={case}");
        assert_eq!(a.states, b.states, "case={case}");
    }
}

#[test]
fn max_matches_stops_at_n_on_a_large_clique() {
    // The dedicated early-termination check: a triangle in K16 has
    // 16*15*14 = 3360 embeddings; every scheduler must stop at exactly N.
    let pattern = sge::graph::generators::directed_cycle(3, 0);
    let target = sge::graph::generators::clique(16, 0);
    let engine = Engine::prepare(&pattern, &target, Algorithm::Ri);
    let full = engine.run(&RunConfig::default());
    assert_eq!(full.matches, 3360);
    for n in [1u64, 25, 500] {
        for scheduler in all_schedulers(4) {
            let outcome = engine.run(&RunConfig::new(scheduler).with_max_matches(n));
            assert_eq!(outcome.matches, n, "{scheduler} n={n}");
            assert!(outcome.limit_hit, "{scheduler} n={n}");
            assert!(
                outcome.states <= full.states,
                "{scheduler} n={n}: a limited run must not search more than a full one"
            );
        }
    }
    // A budget above the total is never hit.
    let outcome = engine.run(&RunConfig::new(Scheduler::work_stealing(4)).with_max_matches(10_000));
    assert_eq!(outcome.matches, 3360);
    assert!(!outcome.limit_hit);
}

#[test]
fn intersection_candidates_match_single_parent_and_vf2() {
    // Same deterministic seed discipline as the rest of this file: for
    // randomized instances with multiple edge labels and self-loops, the
    // intersection-based candidate generator must produce byte-identical
    // sorted mapping sets to the legacy single-parent path under every
    // scheduler, and both must agree with the independent VF2 oracle.
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(0x1317 ^ case);
        let n = 10 + rng.next_below(8);
        let k = 3 + rng.next_below(3);
        let target = random_multi_label_graph(rng.next_u64(), n, 0.2, 2, 3);
        let pattern = extracted_pattern(rng.next_u64(), &target, k);
        let oracle = sge::vf2::count_matches(&pattern, &target);
        for algorithm in [Algorithm::Ri, Algorithm::RiDsSiFc] {
            let intersection = Engine::prepare(&pattern, &target, algorithm);
            let single = Engine::prepare_with_mode(
                &pattern,
                &target,
                algorithm,
                CandidateMode::SingleParent,
            );
            let total = intersection.run(&RunConfig::default()).matches;
            assert_eq!(total, oracle, "case={case} {algorithm} vs VF2");
            let config_for =
                |s: Scheduler| RunConfig::new(s).with_collected_mappings(total as usize + 1);
            let reference = single.run(&config_for(Scheduler::Sequential)).mappings;
            assert_eq!(reference.len(), total as usize, "case={case} {algorithm}");
            for scheduler in [
                Scheduler::Sequential,
                Scheduler::work_stealing(2),
                Scheduler::Rayon { workers: 2 },
            ] {
                let mapped = intersection.run(&config_for(scheduler)).mappings;
                assert_eq!(
                    mapped, reference,
                    "case={case} {algorithm} {scheduler}: intersection mappings diverged"
                );
                let legacy = single.run(&config_for(scheduler)).mappings;
                assert_eq!(
                    legacy, reference,
                    "case={case} {algorithm} {scheduler}: single-parent mappings diverged"
                );
            }
        }
    }
}

#[test]
fn all_strategies_and_modes_agree_with_each_other_and_vf2() {
    // The planning satellite of the strategy extraction: for randomized
    // pattern/target pairs (multiple node and edge labels, self-loops), all
    // three ordering strategies × both candidate modes must produce
    // byte-identical sorted mapping sets, cross-checked against the
    // independent VF2 oracle.  Strategies only reshape the search tree —
    // never the result set.
    for case in 0..10u64 {
        let mut rng = SplitMix64::new(0x9A17 ^ case);
        let n = 10 + rng.next_below(8);
        let k = 3 + rng.next_below(3);
        let target = random_multi_label_graph(rng.next_u64(), n, 0.2, 3, 2);
        let pattern = extracted_pattern(rng.next_u64(), &target, k);
        let oracle = sge::vf2::count_matches(&pattern, &target);
        for algorithm in [Algorithm::Ri, Algorithm::RiDsSiFc] {
            let reference = Engine::prepare(&pattern, &target, algorithm);
            let total = reference.run(&RunConfig::default()).matches;
            assert_eq!(total, oracle, "case={case} {algorithm} vs VF2");
            let collect_all = |e: &Engine<'_>| {
                e.run(&RunConfig::default().with_collected_mappings(total as usize + 1))
                    .mappings
            };
            let expected = collect_all(&reference);
            assert_eq!(expected.len(), total as usize, "case={case} {algorithm}");
            for strategy in Strategy::ALL {
                for mode in [CandidateMode::Intersection, CandidateMode::SingleParent] {
                    let engine =
                        Engine::prepare_planned(&pattern, &target, algorithm, mode, strategy);
                    let mappings = collect_all(&engine);
                    assert_eq!(
                        mappings, expected,
                        "case={case} {algorithm} {strategy} {mode:?}: mappings diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn intersection_handles_self_loops_and_edge_labels_deterministically() {
    // Pattern: a self-looped node with two differently-labeled edges to a
    // second node — every feature the intersection path must respect at once.
    let mut pb = GraphBuilder::new();
    let a = pb.add_node(0);
    let b = pb.add_node(1);
    pb.add_edge(a, a, 5);
    pb.add_edge(a, b, 7);
    pb.add_edge(b, a, 8);
    let pattern = pb.build();

    let mut tb = GraphBuilder::new();
    for i in 0..6u32 {
        tb.add_node(i % 2);
    }
    tb.add_edge(0, 0, 5); // the only correctly-labeled self-loop
    tb.add_edge(2, 2, 6); // self-loop with the wrong label
    tb.add_edge(0, 1, 7);
    tb.add_edge(1, 0, 8);
    tb.add_edge(0, 3, 7);
    tb.add_edge(3, 0, 9); // back-edge label mismatch
    tb.add_edge(2, 5, 7);
    tb.add_edge(5, 2, 8); // both labels right, but node 2's loop label is wrong
    let target = tb.build();

    let oracle = sge::vf2::count_matches(&pattern, &target);
    assert_eq!(oracle, 1, "exactly the (0 -> 0, b -> 1) embedding survives");
    for algorithm in [Algorithm::Ri, Algorithm::RiDs, Algorithm::RiDsSiFc] {
        for mode in [CandidateMode::Intersection, CandidateMode::SingleParent] {
            let engine = Engine::prepare_with_mode(&pattern, &target, algorithm, mode);
            for scheduler in [
                Scheduler::Sequential,
                Scheduler::work_stealing(2),
                Scheduler::Rayon { workers: 2 },
            ] {
                let outcome = engine.run(&RunConfig::new(scheduler).with_collected_mappings(4));
                assert_eq!(outcome.matches, 1, "{algorithm} {mode:?} {scheduler}");
                assert_eq!(
                    outcome.mappings,
                    vec![vec![0, 1]],
                    "{algorithm} {mode:?} {scheduler}"
                );
            }
        }
    }
}

#[test]
fn zero_deadline_times_out_uniformly_across_schedulers() {
    // Time-limit parity: an already-expired budget must report `timed_out`
    // with zero work under every scheduler — not depend on whether a
    // periodic in-search deadline check happens to fire.
    let pattern = sge::graph::generators::undirected_cycle(4, 0);
    let target = sge::graph::generators::grid(4, 4);
    let engine = Engine::prepare(&pattern, &target, Algorithm::RiDsSiFc);
    for scheduler in all_schedulers(4) {
        let outcome = engine.run(&RunConfig::new(scheduler).with_time_limit(Duration::ZERO));
        assert!(outcome.timed_out, "{scheduler}: expected timed_out");
        assert_eq!(outcome.matches, 0, "{scheduler}");
        assert_eq!(outcome.states, 0, "{scheduler}");
        assert!(!outcome.limit_hit, "{scheduler}");
    }
    // Degenerate instances finish before the clock matters and agree too:
    // the empty pattern yields its one empty embedding without a timeout…
    let empty = GraphBuilder::new().build();
    let engine = Engine::prepare(&empty, &target, Algorithm::Ri);
    for scheduler in all_schedulers(4) {
        let outcome = engine.run(&RunConfig::new(scheduler).with_time_limit(Duration::ZERO));
        assert_eq!(outcome.matches, 1, "{scheduler}");
        assert!(!outcome.timed_out, "{scheduler}");
    }
    // …and an impossible instance reports zero matches, not a timeout.
    let mut pb = GraphBuilder::new();
    pb.add_node(99);
    let impossible = pb.build();
    let engine = Engine::prepare(&impossible, &target, Algorithm::RiDs);
    for scheduler in all_schedulers(4) {
        let outcome = engine.run(&RunConfig::new(scheduler).with_time_limit(Duration::ZERO));
        assert_eq!(outcome.matches, 0, "{scheduler}");
        assert!(!outcome.timed_out, "{scheduler}");
    }
}

#[test]
fn collected_mappings_are_deterministic_across_schedulers() {
    for case in 0..4u64 {
        let mut rng = SplitMix64::new(0xD00D ^ case);
        let target = random_labeled_graph(rng.next_u64(), 14, 0.2, 2);
        let pattern = extracted_pattern(rng.next_u64(), &target, 3);
        let engine = Engine::prepare(&pattern, &target, Algorithm::RiDs);
        let total = engine.run(&RunConfig::default()).matches as usize;
        let config_for = |s: Scheduler| RunConfig::new(s).with_collected_mappings(total + 1);
        let reference = engine.run(&config_for(Scheduler::Sequential)).mappings;
        assert_eq!(reference.len(), total);
        for scheduler in all_schedulers(4) {
            let mappings = engine.run(&config_for(scheduler)).mappings;
            assert_eq!(mappings, reference, "case={case} {scheduler}");
        }
    }
}

#[test]
fn streamed_rows_cross_validate_against_collection_and_vf2() {
    // The streaming path (bounded channel, discovery order, optional
    // cancellation) must deliver exactly the matches the buffered collection
    // and the independent VF2 oracle agree on, under every scheduler.
    for case in 0..6u64 {
        let mut rng = SplitMix64::new(0x57AE ^ case);
        let n = 10 + rng.next_below(6);
        let target = random_labeled_graph(rng.next_u64(), n, 0.2, 2);
        let pattern = extracted_pattern(rng.next_u64(), &target, 4);
        let oracle = sge::vf2::count_matches(&pattern, &target);
        let engine = Engine::prepare(&pattern, &target, Algorithm::RiDsSiFc);
        let reference = engine
            .run(&RunConfig::default().with_collected_mappings(1_000_000))
            .mappings;
        assert_eq!(reference.len() as u64, oracle, "case={case}");
        for scheduler in [
            Scheduler::Sequential,
            Scheduler::work_stealing(3),
            Scheduler::Rayon { workers: 2 },
        ] {
            let mut rows: Vec<Vec<sge::graph::NodeId>> = Vec::new();
            let outcome = engine.run_streaming(&RunConfig::new(scheduler), 3, |mapping| {
                rows.push(mapping);
                true
            });
            assert_eq!(outcome.matches, oracle, "case={case} {scheduler}");
            assert!(!outcome.cancelled, "case={case} {scheduler}");
            rows.sort_unstable();
            assert_eq!(
                rows, reference,
                "case={case} {scheduler}: streamed rows != collected mappings"
            );
        }
    }
}

//! A minimal, offline drop-in replacement for the subset of the
//! [criterion](https://docs.rs/criterion) API this workspace uses.
//!
//! The build environment has no access to crates.io, so the real criterion
//! cannot be vendored wholesale.  This shim keeps the bench sources idiomatic
//! (`criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `Bencher::iter`, `BenchmarkId`) while providing a deliberately simple
//! measurement loop: a short warm-up, then a fixed number of timed batches,
//! reporting min / mean / max per iteration.  It is good enough to compare
//! configurations on one machine and to keep `cargo bench` compiling and
//! running; it does not do criterion's statistical analysis, outlier
//! rejection or HTML reports.  Swapping back to the real crate is a one-line
//! `Cargo.toml` change — no bench source needs to be touched.

use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` like the real crate.
pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const MEASURE_BATCHES: u64 = 10;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: MEASURE_BATCHES,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), MEASURE_BATCHES, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches (criterion's sample count analogue).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(2);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with an input value, mirroring criterion's
    /// `bench_with_input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut adapted = |b: &mut Bencher| f(b, input);
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            &mut adapted,
        );
        self
    }

    /// Ends the group (no-op in the shim; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function/parameter`-style id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }

    /// Id that is just the parameter, e.g. a worker count.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Hands the closure-under-test to the measurement loop.
pub struct Bencher {
    batch: Duration,
}

impl Bencher {
    /// Times `routine`, once per batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.batch = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, batches: u64, f: &mut F) {
    let mut bencher = Bencher {
        batch: Duration::ZERO,
    };
    for _ in 0..WARMUP_ITERS {
        f(&mut bencher);
    }
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    for _ in 0..batches {
        f(&mut bencher);
        let t = bencher.batch;
        total += t;
        min = min.min(t);
        max = max.max(t);
    }
    let mean = total / batches as u32;
    println!("{label:<48} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]");
}

/// Declares a named group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(4).0, "4");
        assert_eq!(BenchmarkId::new("f", 4).0, "f/4");
    }

    #[test]
    fn measurement_loop_runs_the_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        {
            let mut group = c.benchmark_group("shim_selftest");
            group.sample_size(2);
            group.bench_function("count", |b| b.iter(|| calls += 1));
            group.finish();
        }
        // 3 warm-up + 2 measured batches.
        assert_eq!(calls, 5);
    }
}
